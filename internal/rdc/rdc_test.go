package rdc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"asynctp/internal/dc"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func newEngineT(init map[storage.Key]metric.Value) *Engine {
	return NewEngine(storage.NewFrom(init), nil)
}

// pauseRead builds a read op on key that parks once at read time until
// release closes. Safe under repair: the started signal fires exactly
// once and a closed release never blocks re-evaluation.
func pauseRead(key storage.Key, started, release chan struct{}) txn.Op {
	var once sync.Once
	return txn.Op{Kind: txn.OpRead, Key: key, AbortIf: func(metric.Value) bool {
		once.Do(func() { close(started) })
		<-release
		return false
	}}
}

func TestCommitSimpleTransfer(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "y": 0})
	p := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	out, imported, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed || imported != 0 {
		t.Errorf("out=%+v imported=%d", out, imported)
	}
	if e.store.Get("x") != 900 || e.store.Get("y") != 100 {
		t.Errorf("state: x=%d y=%d", e.store.Get("x"), e.store.Get("y"))
	}
	if st := e.Stats(); st.Commits != 1 || st.Aborts != 0 || st.Repairs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReadsOwnWrites(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	p := txn.MustProgram("t", txn.AddOp("x", 5), txn.ReadOp("x"))
	out, _, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.ReadValue("x"); !ok || v != 15 {
		t.Errorf("read own write = %d", v)
	}
}

func TestRollbackLeavesNoEffect(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 50})
	p := txn.MustProgram("w",
		txn.AddOp("staging", 1),
		txn.WithAbortIf(txn.AddOp("x", -100), func(v metric.Value) bool { return v < 100 }),
	)
	_, _, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if !errors.Is(err, txn.ErrRollback) {
		t.Fatalf("err = %v", err)
	}
	if e.store.Has("staging") {
		t.Error("buffered write leaked to store")
	}
}

// TestRepairInsteadOfAbort is the core repair scenario: a write-write
// conflict that would abort the odc engine is repaired in place — the
// stale op re-executes against the committed value and the transaction
// commits on its first attempt. The stale write is non-commutative
// (a transform), so it genuinely needs re-execution rather than the
// install-time re-application commutative increments get.
func TestRepairInsteadOfAbort(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	e.SetVerify(true)
	started := make(chan struct{})
	release := make(chan struct{})
	slow := txn.MustProgram("slow",
		txn.TransformOp("x", func(v metric.Value) metric.Value { return v + 3 }, metric.LimitOf(3)),
		pauseRead("y", started, release),
	)

	type res struct {
		out *txn.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		ch <- res{out, err}
	}()
	<-started
	// A concurrent increment moves x from 10 to 15 while slow holds a
	// buffered x=13 computed over the stale base.
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("fast", txn.AddOp("x", 5)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	r := <-ch
	if r.err != nil {
		t.Fatalf("slow: %v (want repaired commit, not abort)", r.err)
	}
	if got := e.store.Get("x"); got != 18 {
		t.Errorf("x = %d, want 18 (both increments)", got)
	}
	st := e.Stats()
	if st.Repairs != 1 || st.Aborts != 0 {
		t.Errorf("stats = %+v, want exactly one repair and no aborts", st)
	}
	if st.RepairedOps == 0 {
		t.Error("RepairedOps = 0 after a repair")
	}
	if msg := e.VerifyFailure(); msg != "" {
		t.Errorf("verify: %s", msg)
	}
}

// TestRepairFlipsRollbackDecision repairs a read feeding an AbortIf
// predicate: the predicate was false on the stale input but the fresh
// committed value makes it true, so the repaired transaction must roll
// back — committing on the stale decision would overdraw the account.
func TestRepairFlipsRollbackDecision(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 150})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := txn.MustProgram("withdraw",
		txn.Op{
			Kind: txn.OpWrite, Key: "x",
			Update: func(v metric.Value) metric.Value { return v - 100 },
			Bound:  metric.LimitOf(100),
			AbortIf: func(v metric.Value) bool {
				once.Do(func() { close(started) })
				<-release
				return v < 100
			},
		},
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	// Drain the account below the predicate threshold while slow is
	// parked: its read-time decision (150 ≥ 100, proceed) must flip.
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("drain", txn.AddOp("x", -100)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; !errors.Is(err, txn.ErrRollback) {
		t.Fatalf("err = %v, want rollback (fresh value 50 < 100)", err)
	}
	if got := e.store.Get("x"); got != 50 {
		t.Errorf("x = %d, want 50 (only the drain applied)", got)
	}
	if st := e.Stats(); st.Commits != 1 {
		t.Errorf("Commits = %d, want 1 (the drain only)", st.Commits)
	}
}

// TestRepairKeepsCommitWhenDecisionHolds is the non-flipping direction:
// the guarded input changes but the predicate still passes, so the
// repair recomputes the write on the fresh value and commits.
func TestRepairKeepsCommitWhenDecisionHolds(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 500})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := txn.MustProgram("withdraw",
		txn.Op{
			Kind: txn.OpWrite, Key: "x",
			Update: func(v metric.Value) metric.Value { return v - 100 },
			Bound:  metric.LimitOf(100),
			AbortIf: func(v metric.Value) bool {
				once.Do(func() { close(started) })
				<-release
				return v < 100
			},
		},
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("drain", txn.AddOp("x", -200)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("err = %v, want repaired commit (300 ≥ 100)", err)
	}
	if got := e.store.Get("x"); got != 200 {
		t.Errorf("x = %d, want 200 (500 - 200 - 100)", got)
	}
}

// TestRepairedCommutativeIncrementChain exercises a chain of buffered
// increments with a read of own writes threaded through: the repair
// must re-execute the whole local dependency chain, not just the first
// stale op, so no increment is lost and the read observes the fresh base.
func TestRepairedCommutativeIncrementChain(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 100})
	e.SetVerify(true)
	started := make(chan struct{})
	release := make(chan struct{})
	slow := txn.MustProgram("chain",
		txn.AddOp("x", 1),
		txn.AddOp("x", 2),
		txn.ReadOp("x"),
		pauseRead("y", started, release),
	)
	type res struct {
		out *txn.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		ch <- res{out, err}
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("bump", txn.AddOp("x", 1000)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if got := e.store.Get("x"); got != 1103 {
		t.Errorf("x = %d, want 1103 (100+1000+1+2)", got)
	}
	// The repaired read of own writes observes the fresh base.
	if v, _ := r.out.ReadValue("x"); v != 1103 {
		t.Errorf("read = %d, want 1103", v)
	}
	if msg := e.VerifyFailure(); msg != "" {
		t.Errorf("verify: %s", msg)
	}
}

// TestConcurrentIncrementsNeverAbort is the repair answer to odc's
// commutative-write absorption: under a pure increment storm the engine
// repairs every conflict and no transaction ever retries.
func TestConcurrentIncrementsNeverAbort(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	e.SetVerify(true)
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				owner := lock.Owner(i*1000 + j)
				if _, _, err := e.Run(context.Background(), owner, p, metric.Strict, txn.Update); err != nil {
					t.Errorf("inc: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x"); got != 800 {
		t.Errorf("x = %d, want 800 (no lost increments)", got)
	}
	st := e.Stats()
	if st.Aborts != 0 {
		t.Errorf("Aborts = %d, want 0 (every conflict repaired)", st.Aborts)
	}
	if msg := e.VerifyFailure(); msg != "" {
		t.Errorf("verify: %s", msg)
	}
}

// TestStaleIncrementReappliedNotRepaired pins the commutative fast
// path: a pure unconsumed increment whose base moved underneath it is
// refreshed at install (the odc engine's re-application) — no repair
// round, no abort, and no lost update.
func TestStaleIncrementReappliedNotRepaired(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	e.SetVerify(true)
	started := make(chan struct{})
	release := make(chan struct{})
	slow := txn.MustProgram("slow",
		txn.AddOp("x", 3),
		pauseRead("y", started, release),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("fast", txn.AddOp("x", 5)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("slow: %v (want re-applied commit)", err)
	}
	if got := e.store.Get("x"); got != 18 {
		t.Errorf("x = %d, want 18 (both increments)", got)
	}
	st := e.Stats()
	if st.ReApplied != 1 || st.Repairs != 0 || st.RepairRounds != 0 || st.Aborts != 0 {
		t.Errorf("stats = %+v, want one re-application and no repairs", st)
	}
	if msg := e.VerifyFailure(); msg != "" {
		t.Errorf("verify: %s", msg)
	}
}

// TestFallbackAfterRoundBudget forces the retry-then-fallback path:
// with both repair bounds at zero, any staleness exceeds the budget and
// surfaces as a retryable validation abort.
func TestFallbackAfterRoundBudget(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	e.SetRepairLimits(0, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	slow := txn.MustProgram("slow",
		txn.TransformOp("x", func(v metric.Value) metric.Value { return v + 3 }, metric.LimitOf(3)),
		pauseRead("y", started, release),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 1, slow, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 2,
		txn.MustProgram("fast", txn.AddOp("x", 5)), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	err := <-errCh
	if !Retryable(err) {
		t.Fatalf("err = %v, want retryable fallback", err)
	}
	if st := e.Stats(); st.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", st.Aborts)
	}
	// The retry succeeds cleanly.
	if _, _, err := e.Run(context.Background(), 3,
		txn.MustProgram("slow", txn.AddOp("x", 3), txn.ReadOp("y")), metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	if got := e.store.Get("x"); got != 18 {
		t.Errorf("x = %d, want 18", got)
	}
}

// TestEpsilonSkipCommitsStaleRead: a query whose only stale op is a
// plain read commits the stale value as-is, imports exactly the value
// delta, and emits one absorbed dc.Event charging the writer.
func TestEpsilonSkipCommitsStaleRead(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000})
	e.SetSkip(true)
	var events []dc.Event
	var evMu sync.Mutex
	e.SetDCObserver(func(ev dc.Event) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})

	started := make(chan struct{})
	release := make(chan struct{})
	audit := txn.MustProgram("audit",
		txn.ReadOp("x"),
		pauseRead("y", started, release),
	)
	type res struct {
		out      *txn.Outcome
		imported metric.Fuzz
		err      error
	}
	ch := make(chan res, 1)
	go func() {
		out, imported, err := e.Run(context.Background(), 10, audit,
			metric.Spec{Import: metric.LimitOf(200), Export: metric.Zero}, txn.Query)
		ch <- res{out, imported, err}
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 11,
		txn.MustProgram("upd", txn.AddOp("x", -100)),
		metric.Spec{Import: metric.Zero, Export: metric.LimitOf(1000)}, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.imported != 100 {
		t.Errorf("imported = %d, want 100 (the skipped delta)", r.imported)
	}
	// The stale value committed as-is: ε-skip trades this exact
	// divergence for not re-running the read.
	if v, _ := r.out.ReadValue("x"); v != 1000 {
		t.Errorf("read = %d, want stale 1000", v)
	}
	st := e.Stats()
	if st.Skips != 1 || st.SkippedFuzz != 100 {
		t.Errorf("stats = %+v, want one skip of fuzz 100", st)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if !ev.Absorbed || ev.Cost != 100 || ev.Key != "x" || len(ev.Pairs) != 1 ||
		ev.Pairs[0].Query != 10 || ev.Pairs[0].Update != 11 {
		t.Errorf("event = %+v", ev)
	}
}

// TestEpsilonSkipRespectsBudgets: skip is refused when the import
// budget or the writer's export budget cannot carry the delta; the
// repair path takes over and the fresh value commits.
func TestEpsilonSkipRespectsBudgets(t *testing.T) {
	for _, tc := range []struct {
		name             string
		importL, exportL metric.Limit
	}{
		{"import too small", metric.LimitOf(50), metric.LimitOf(1000)},
		{"export exhausted", metric.LimitOf(200), metric.Zero},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngineT(map[storage.Key]metric.Value{"x": 1000})
			e.SetSkip(true)
			started := make(chan struct{})
			release := make(chan struct{})
			audit := txn.MustProgram("audit",
				txn.ReadOp("x"),
				pauseRead("y", started, release),
			)
			type res struct {
				out *txn.Outcome
				err error
			}
			ch := make(chan res, 1)
			go func() {
				out, _, err := e.Run(context.Background(), 10, audit,
					metric.Spec{Import: tc.importL, Export: metric.Zero}, txn.Query)
				ch <- res{out, err}
			}()
			<-started
			if _, _, err := e.Run(context.Background(), 11,
				txn.MustProgram("upd", txn.AddOp("x", -100)),
				metric.Spec{Import: metric.Zero, Export: tc.exportL}, txn.Update); err != nil {
				t.Fatal(err)
			}
			close(release)
			r := <-ch
			if r.err != nil {
				t.Fatal(r.err)
			}
			// Not skipped: the read was repaired to the fresh value.
			if v, _ := r.out.ReadValue("x"); v != 900 {
				t.Errorf("read = %d, want repaired 900", v)
			}
			if st := e.Stats(); st.Skips != 0 || st.Repairs != 1 {
				t.Errorf("stats = %+v, want repair instead of skip", st)
			}
		})
	}
}

// TestEpsilonSkipNeverForUpdates: an update-class transaction with a
// stale read is always repaired, never skipped, regardless of budgets.
func TestEpsilonSkipNeverForUpdates(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000})
	e.SetSkip(true)
	started := make(chan struct{})
	release := make(chan struct{})
	p := txn.MustProgram("upd",
		txn.ReadOp("x"),
		pauseRead("y", started, release),
		txn.AddOp("z", 1),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 10, p,
			metric.Spec{Import: metric.LimitOf(10000), Export: metric.LimitOf(10000)}, txn.Update)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 11,
		txn.MustProgram("w", txn.AddOp("x", -100)),
		metric.SpecOf(10000), txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Skips != 0 {
		t.Errorf("Skips = %d, want 0 for update class", st.Skips)
	}
}

// TestEpsilonSkipChargedOnceInLedger drives the engine through the obs
// plane the way core.Runner does and asserts the retry discipline: a
// first attempt that falls back (debits voided), then a successful
// ε-skip — the ledger must end up charged exactly once.
func TestEpsilonSkipChargedOnceInLedger(t *testing.T) {
	plane := obs.NewPlane(nil, obs.NewLedger(), nil)
	e := NewEngine(storage.NewFrom(map[storage.Key]metric.Value{"x": 1000}),
		plane.ExecObserver())
	e.SetSkip(true)
	e.SetDCObserver(plane.DCObserver())

	const auditOwner, auditGroup = 10, 100
	plane.Ledger.BindGroup(auditGroup, "audit", "query", "rdc", metric.LimitOf(200))

	runAudit := func(attempt int, rounds int) (metric.Fuzz, error) {
		e.SetRepairLimits(0, rounds) // rounds=0 forces the fallback path
		owner := int64(auditOwner + attempt)
		plane.PieceBegin(owner, auditGroup, 0, "local", "audit", txn.Query, 0, 0, "")
		started := make(chan struct{})
		release := make(chan struct{})
		audit := txn.MustProgram("audit",
			txn.ReadOp("x"),
			pauseRead("y", started, release),
		)
		type res struct {
			imported metric.Fuzz
			err      error
		}
		ch := make(chan res, 1)
		go func() {
			_, imported, err := e.Run(context.Background(), lock.Owner(owner), audit,
				metric.Spec{Import: metric.LimitOf(200), Export: metric.Zero}, txn.Query)
			ch <- res{imported, err}
		}()
		<-started
		if _, _, err := e.Run(context.Background(), lock.Owner(owner)+1000,
			txn.MustProgram("upd", txn.AddOp("x", -50)),
			metric.Spec{Import: metric.Zero, Export: metric.LimitOf(1000)}, txn.Update); err != nil {
			t.Fatal(err)
		}
		close(release)
		r := <-ch
		if r.err == nil {
			plane.PieceSettle(owner, r.imported, 0)
		}
		return r.imported, r.err
	}

	// Attempt 1: with skip disabled and a zero repair budget the stale
	// read falls back to a retryable abort; any pending debits are
	// voided by the exec observer.
	e.SetSkip(false)
	if _, err := runAudit(0, 0); !Retryable(err) {
		t.Fatalf("attempt 1: err = %v, want fallback", err)
	}
	e.SetSkip(true)
	imported, err := runAudit(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if imported != 50 {
		t.Fatalf("imported = %d, want 50", imported)
	}

	for _, acct := range plane.Ledger.Accounts() {
		if acct.Group != auditGroup {
			continue
		}
		if acct.Charged != 50 {
			t.Errorf("ledger charged = %d, want exactly 50 (no double charge)", acct.Charged)
		}
		return
	}
	t.Fatal("audit group missing from ledger")
}

func TestValidationWindowGC(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	for i := 0; i < 100; i++ {
		if _, _, err := e.Run(context.Background(), lock.Owner(i+1), p, metric.Strict, txn.Update); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().GCRetained; got != 0 {
		t.Errorf("validation window = %d entries after quiescence", got)
	}
	e.mu.Lock()
	idx := len(e.index)
	e.mu.Unlock()
	if idx != 0 {
		t.Errorf("version index holds %d keys after quiescence", idx)
	}
	// Versions survive GC: a fresh read still validates against them.
	if e.verOf("x") == 0 {
		t.Error("version counter pruned with the window")
	}
}

func TestContextCancellation(t *testing.T) {
	e := newEngineT(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := txn.MustProgram("t", txn.ReadOp("x"))
	if _, _, err := e.Run(ctx, 1, p, metric.Strict, txn.Query); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	e := newEngineT(nil)
	if _, _, err := e.Run(context.Background(), 1, &txn.Program{Name: "bad"}, metric.Strict, txn.Query); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestStressMixedWorkloadConservedAndVerified(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 100000, "y": 100000})
	e.SetVerify(true)
	e.SetSkip(true)
	xfer := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("x"), txn.ReadOp("y"))
	spec := metric.SpecOf(10000)
	var wg sync.WaitGroup
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := lock.Owner(i * 100000)
			for n := 0; n < 200 && time.Now().Before(deadline); n++ {
				owner++
				p, class := xfer, txn.Update
				if i%2 == 0 {
					p, class = audit, txn.Query
				}
				for {
					out, imported, err := e.Run(context.Background(), owner, p, spec, class)
					if err == nil {
						if class == txn.Query {
							dev := metric.Distance(out.SumReads(), 200000)
							if dev > 10000 {
								t.Errorf("deviation %d > ε", dev)
							}
							if dev > imported {
								t.Errorf("deviation %d > imported %d", dev, imported)
							}
						}
						break
					}
					if !Retryable(err) {
						t.Errorf("run: %v", err)
						return
					}
					owner++
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x") + e.store.Get("y"); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
	if msg := e.VerifyFailure(); msg != "" {
		t.Errorf("verify: %s", msg)
	}
}
