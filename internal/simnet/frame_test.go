package simnet

import (
	"testing"
	"time"
)

// fakeFrame is a batch payload carrying several application messages.
type fakeFrame struct{ n int }

func (f fakeFrame) FrameLen() int { return f.n }

// TestFramePayloadCounting checks the Stats split: Delivered counts
// frames (one per Send), Payloads counts the application messages they
// carried.
func TestFramePayloadCounting(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, err := n.AddSite("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: "batch", Payload: fakeFrame{n: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: "plain", Payload: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := Recv(ctxT(t), inbox); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2 frames", st.Delivered)
	}
	if st.Payloads != 6 {
		t.Errorf("Payloads = %d, want 6 (5 batched + 1 plain)", st.Payloads)
	}
}

// TestFrameIsOneLossDraw pins the determinism contract: a frame of N
// messages consumes exactly one RNG draw, same as a plain message, so
// the drop/jitter pattern is a function of the frame sequence alone.
// Re-grouping traffic into frames must not shift later draws.
func TestFrameIsOneLossDraw(t *testing.T) {
	pattern := func(batched bool) []bool {
		n := New(WithLossRate(0.5), WithSeed(7))
		defer n.Close()
		if _, err := n.AddSite("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddSite("b"); err != nil {
			t.Fatal(err)
		}
		var drops []bool
		var prev uint64
		for i := 0; i < 32; i++ {
			var payload any = i
			if batched {
				payload = fakeFrame{n: 10} // 10 messages, still one draw
			}
			if err := n.Send(Message{From: "a", To: "b", Payload: payload}); err != nil {
				t.Fatal(err)
			}
			d := n.Stats().Dropped
			drops = append(drops, d > prev)
			prev = d
		}
		return drops
	}
	plain, batched := pattern(false), pattern(true)
	for i := range plain {
		if plain[i] != batched[i] {
			t.Fatalf("draw pattern diverged at send %d: frames must cost one draw", i)
		}
	}
}

// TestFrameLossIsAllOrNothing sends frames through a partitioned link:
// a lost frame loses every payload it carried (no partial frames), and
// Payloads counts only delivered ones.
func TestFrameLossIsAllOrNothing(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, err := n.AddSite("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	n.SetPartitioned("a", "b", true)
	_ = n.Send(Message{From: "a", To: "b", Payload: fakeFrame{n: 4}})
	n.SetPartitioned("a", "b", false)
	if err := n.Send(Message{From: "a", To: "b", Payload: fakeFrame{n: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	st := n.Stats()
	if st.Dropped != 1 || st.Delivered != 1 {
		t.Errorf("dropped/delivered = %d/%d, want 1/1", st.Dropped, st.Delivered)
	}
	if st.Payloads != 3 {
		t.Errorf("Payloads = %d, want 3 (lost frame contributes nothing)", st.Payloads)
	}
}
