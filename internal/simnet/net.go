package simnet

import "time"

// Sender is the one-method seam between the pipeline endpoints (the
// recoverable-queue manager, the 2PC node) and whatever wire carries
// their messages. The in-process simulated Network implements it; so
// does the real TCP transport (internal/transport). Everything the
// batching layer ships — BatchFrame coalescing, cumulative acks,
// watermark dedup, adaptive retransmit — was already expressed against
// Send alone, which is what makes the transports swappable twins.
type Sender interface {
	// Send queues msg for asynchronous delivery. An error means the
	// message was NOT handed to the wire (unknown or unreachable
	// destination); reliable layers above retransmit. A nil return is
	// not a delivery guarantee — frames may still be lost in flight.
	Send(msg Message) error
}

// Net is the cluster-facing wire: message delivery plus the failure
// primitives a fault.Schedule drives. The simulated Network implements
// it natively; the TCP transport maps each primitive onto real-socket
// behavior (down sites and cut links drop frames and kill connections;
// latency becomes an artificial delivery delay for WAN emulation on
// loopback).
type Net interface {
	Sender
	// AddSite registers a (local) site and returns its inbox.
	AddSite(id SiteID) (<-chan Message, error)
	// SetDown marks a site crashed (true) or recovered (false).
	SetDown(id SiteID, down bool)
	// SetPartitioned cuts (true) or heals (false) the undirected link.
	SetPartitioned(a, b SiteID, cut bool)
	// SetLossRate sets the silent in-flight frame-loss fraction [0,1].
	SetLossRate(rate float64)
	// SetLatency sets the base one-way latency and jitter fraction.
	SetLatency(base time.Duration, jitter float64)
	// Stats snapshots the frame/payload counters.
	Stats() Stats
	// Close stops the wire and waits for in-flight deliveries.
	Close()
}

// compile-time check: the simulated network satisfies the seam.
var _ Net = (*Network)(nil)
