// Package simnet simulates the wide-area message network between sites.
//
// Section 4's performance argument is about message rounds: a two-phase
// commit costs at least two rounds of cross-site messages ("a round trip
// of message passing can take from a few hundred milliseconds to a few
// seconds"), while chopped pieces communicating through recoverable
// queues pay a single one-way transfer. The network therefore meters
// every message per link and applies a configurable one-way latency, so
// the harness can report both message counts and wall-clock effects. It
// also simulates the failures the paper worries about: site crashes and
// link partitions, under which 2PC blocks but asynchronous pieces keep
// committing.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// SiteID names a site.
type SiteID string

// Message is one network message. Payload types are application-defined;
// Kind routes them on the receiving site.
type Message struct {
	From, To SiteID
	Kind     string
	Payload  any
}

// Frame is implemented by payloads that carry several application
// messages coalesced into a single network frame (e.g. a batched
// recoverable-queue transfer). The network treats a frame exactly like
// any other message — one loss draw, one jitter draw, one delivery —
// so batching N messages into a frame costs a single RNG draw instead
// of N. That is what keeps seeded runs deterministic as the batching
// layer regroups traffic: the draw sequence is a function of the frame
// sequence, and a frame is lost or delayed as a unit, never partially.
// FrameLen only feeds the Stats.Payloads counter.
type Frame interface {
	// FrameLen reports how many application messages the frame carries.
	FrameLen() int
}

// payloadCount returns the number of application messages msg carries:
// FrameLen for batch frames, 1 for everything else.
func payloadCount(msg Message) uint64 {
	if f, ok := msg.Payload.(Frame); ok {
		if n := f.FrameLen(); n > 0 {
			return uint64(n)
		}
	}
	return 1
}

// Errors returned by Send.
var (
	// ErrUnknownSite is returned for a destination never added.
	ErrUnknownSite = errors.New("simnet: unknown site")
	// ErrUnreachable is returned when the destination is down or the
	// link is partitioned; the message is counted as dropped.
	ErrUnreachable = errors.New("simnet: unreachable")
)

// Stats are cumulative network counters. Sent/Delivered/Dropped count
// frames (one Send call each); Payloads counts the application messages
// those delivered frames carried, so Payloads/Delivered is the mean
// coalescing factor of the batching layer above.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	// Payloads counts delivered application messages: batch frames
	// contribute their FrameLen, plain messages contribute 1.
	Payloads uint64
	// PerLink counts delivered messages per (from, to) link.
	PerLink map[string]uint64
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the base one-way latency (default 0).
func WithLatency(d time.Duration) Option {
	return func(n *Network) { n.baseLatency = d }
}

// WithJitter sets latency jitter as a fraction of the base (0..1).
func WithJitter(frac float64) Option {
	return func(n *Network) { n.jitter = frac }
}

// WithSeed seeds the jitter/loss RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithLossRate makes the network silently drop the given fraction of
// messages in flight (0..1). Reliable layers above (recoverable queues,
// 2PC retries) must survive this.
func WithLossRate(rate float64) Option {
	return func(n *Network) { n.lossRate = rate }
}

// Network is a simulated message network. Delivery is asynchronous: Send
// returns immediately and the message lands in the destination inbox
// after the simulated latency. Messages between the same pair of sites
// may reorder when jitter is nonzero, as on a real WAN.
//
// Concurrency and determinism: every use of the shared rng and every
// read of the latency/loss knobs happens under mu, inside Send. Given a
// fixed seed (WithSeed) and a fixed sequence of Send calls, the drop
// and jitter decisions are therefore a pure function of that sequence —
// concurrent senders serialize on mu, so the network itself introduces
// no data races (only the caller-side ordering nondeterminism a real
// network has).
type Network struct {
	mu          sync.Mutex
	rng         *rand.Rand
	baseLatency time.Duration
	jitter      float64
	lossRate    float64
	inboxes     map[SiteID]chan Message
	down        map[SiteID]bool
	partitioned map[[2]SiteID]bool
	stats       Stats
	wg          sync.WaitGroup
	closed      bool
}

// New builds a network.
func New(opts ...Option) *Network {
	n := &Network{
		rng:         rand.New(rand.NewSource(1)),
		inboxes:     make(map[SiteID]chan Message),
		down:        make(map[SiteID]bool),
		partitioned: make(map[[2]SiteID]bool),
	}
	n.stats.PerLink = make(map[string]uint64)
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// AddSite registers a site and returns its inbox.
func (n *Network) AddSite(id SiteID) (<-chan Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.inboxes[id]; dup {
		return nil, fmt.Errorf("simnet: site %q already exists", id)
	}
	ch := make(chan Message, 256)
	n.inboxes[id] = ch
	return ch, nil
}

// linkKey normalizes a partition key (undirected).
func linkKey(a, b SiteID) [2]SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]SiteID{a, b}
}

// SetDown marks a site crashed (true) or recovered (false). Messages to
// a crashed site are dropped — the site's durable state is the store
// journal, not the inbox.
func (n *Network) SetDown(id SiteID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
}

// SetPartitioned cuts (true) or heals (false) the link between two sites.
func (n *Network) SetPartitioned(a, b SiteID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[linkKey(a, b)] = cut
}

// SetLossRate changes the silent in-flight loss fraction at runtime
// (fault schedules use it for degraded-network phases). Values are
// clamped to [0, 1].
func (n *Network) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// SetLatency changes the base one-way latency and jitter fraction at
// runtime (fault schedules use it for latency spikes). Messages already
// in flight keep their original delay.
func (n *Network) SetLatency(base time.Duration, jitter float64) {
	if base < 0 {
		base = 0
	}
	if jitter < 0 {
		jitter = 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.baseLatency = base
	n.jitter = jitter
}

// Send queues msg for delivery. It returns ErrUnreachable (counting the
// message as dropped) when the destination is down or partitioned at
// send time, and ErrUnknownSite for unregistered destinations.
func (n *Network) Send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("simnet: network closed")
	}
	inbox, ok := n.inboxes[msg.To]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSite, msg.To)
	}
	n.stats.Sent++
	if n.down[msg.To] || n.down[msg.From] || n.partitioned[linkKey(msg.From, msg.To)] {
		n.stats.Dropped++
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, msg.From, msg.To)
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		// Silent in-flight loss: the sender believes it sent.
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	delay := n.baseLatency
	if n.jitter > 0 && delay > 0 {
		delay += time.Duration(n.rng.Float64() * n.jitter * float64(delay))
	}
	n.wg.Add(1)
	n.mu.Unlock()

	deliver := func() {
		defer n.wg.Done()
		// Re-check reachability at delivery time: a crash during flight
		// loses the message.
		n.mu.Lock()
		blocked := n.down[msg.To] || n.partitioned[linkKey(msg.From, msg.To)] || n.closed
		if blocked {
			n.stats.Dropped++
			n.mu.Unlock()
			return
		}
		n.stats.Delivered++
		n.stats.Payloads += payloadCount(msg)
		n.stats.PerLink[string(msg.From)+"->"+string(msg.To)]++
		n.mu.Unlock()
		inbox <- msg
	}
	if delay == 0 {
		go deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.PerLink = make(map[string]uint64, len(n.stats.PerLink))
	for k, v := range n.stats.PerLink {
		out.PerLink[k] = v
	}
	return out
}

// Close stops accepting sends and waits for in-flight deliveries. Inbox
// channels stay open so receivers drain without panics.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Recv receives one message from inbox, honoring ctx.
func Recv(ctx context.Context, inbox <-chan Message) (Message, error) {
	select {
	case msg := <-inbox:
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}
