package simnet

import (
	"context"
	"errors"
	"testing"
	"time"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSendAndReceive(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, err := n.AddSite("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: "ping", Payload: 42}); err != nil {
		t.Fatal(err)
	}
	msg, err := Recv(ctxT(t), inbox)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "ping" || msg.Payload.(int) != 42 || msg.From != "a" {
		t.Errorf("msg = %+v", msg)
	}
}

func TestDuplicateSiteRejected(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestUnknownDestination(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	err := n.Send(Message{From: "a", To: "ghost"})
	if !errors.Is(err, ErrUnknownSite) {
		t.Errorf("err = %v, want ErrUnknownSite", err)
	}
}

func TestDownSiteDropsMessages(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	n.SetDown("b", false)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Sent != 2 || st.Dropped != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartitionCutsBothKeyOrders(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("b"); err != nil {
		t.Fatal(err)
	}
	n.SetPartitioned("b", "a", true)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("a->b not cut: %v", err)
	}
	if err := n.Send(Message{From: "b", To: "a"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("b->a not cut: %v", err)
	}
	n.SetPartitioned("a", "b", false)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Errorf("healed link still cut: %v", err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(WithLatency(60 * time.Millisecond))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~60ms", elapsed)
	}
}

func TestCrashDuringFlightLosesMessage(t *testing.T) {
	n := New(WithLatency(80 * time.Millisecond))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true) // crash while the message is in flight
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Recv(ctx, inbox); err == nil {
		t.Error("message delivered to crashed site")
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestPerLinkAccounting(t *testing.T) {
	n := New()
	defer n.Close()
	ia, _ := n.AddSite("a")
	ib, _ := n.AddSite("b")
	for i := 0; i < 3; i++ {
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(Message{From: "b", To: "a"}); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	for i := 0; i < 3; i++ {
		if _, err := Recv(ctx, ib); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Recv(ctx, ia); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.PerLink["a->b"] != 3 || st.PerLink["b->a"] != 1 {
		t.Errorf("PerLink = %v", st.PerLink)
	}
}

func TestClosedNetworkRejectsSend(t *testing.T) {
	n := New()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("b"); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Send(Message{From: "a", To: "b"}); err == nil {
		t.Error("send after close accepted")
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	n := New(WithLatency(20*time.Millisecond), WithJitter(0.5), WithSeed(7))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
		if _, err := Recv(ctx, inbox); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if elapsed < 15*time.Millisecond || elapsed > 300*time.Millisecond {
			t.Errorf("delivery %d took %v, want ~20-30ms", i, elapsed)
		}
	}
}

func TestLossRateDropsSilently(t *testing.T) {
	n := New(WithLossRate(1.0), WithSeed(1))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	// Sender sees success; nothing arrives.
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatalf("lossy send errored: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := Recv(ctx, inbox); err == nil {
		t.Error("message survived 100% loss")
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	n := New(WithLossRate(0.5), WithSeed(42))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for {
		if _, err := Recv(ctx, inbox); err != nil {
			break
		}
		delivered++
	}
	if delivered < total/4 || delivered > 3*total/4 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, total)
	}
}
