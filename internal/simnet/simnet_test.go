package simnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSendAndReceive(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, err := n.AddSite("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: "ping", Payload: 42}); err != nil {
		t.Fatal(err)
	}
	msg, err := Recv(ctxT(t), inbox)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "ping" || msg.Payload.(int) != 42 || msg.From != "a" {
		t.Errorf("msg = %+v", msg)
	}
}

func TestDuplicateSiteRejected(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("a"); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestUnknownDestination(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	err := n.Send(Message{From: "a", To: "ghost"})
	if !errors.Is(err, ErrUnknownSite) {
		t.Errorf("err = %v, want ErrUnknownSite", err)
	}
}

func TestDownSiteDropsMessages(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	n.SetDown("b", false)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Sent != 2 || st.Dropped != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartitionCutsBothKeyOrders(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("b"); err != nil {
		t.Fatal(err)
	}
	n.SetPartitioned("b", "a", true)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("a->b not cut: %v", err)
	}
	if err := n.Send(Message{From: "b", To: "a"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("b->a not cut: %v", err)
	}
	n.SetPartitioned("a", "b", false)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Errorf("healed link still cut: %v", err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(WithLatency(60 * time.Millisecond))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~60ms", elapsed)
	}
}

func TestCrashDuringFlightLosesMessage(t *testing.T) {
	n := New(WithLatency(80 * time.Millisecond))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true) // crash while the message is in flight
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Recv(ctx, inbox); err == nil {
		t.Error("message delivered to crashed site")
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestPerLinkAccounting(t *testing.T) {
	n := New()
	defer n.Close()
	ia, _ := n.AddSite("a")
	ib, _ := n.AddSite("b")
	for i := 0; i < 3; i++ {
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(Message{From: "b", To: "a"}); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	for i := 0; i < 3; i++ {
		if _, err := Recv(ctx, ib); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Recv(ctx, ia); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.PerLink["a->b"] != 3 || st.PerLink["b->a"] != 1 {
		t.Errorf("PerLink = %v", st.PerLink)
	}
}

func TestClosedNetworkRejectsSend(t *testing.T) {
	n := New()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("b"); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Send(Message{From: "a", To: "b"}); err == nil {
		t.Error("send after close accepted")
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	n := New(WithLatency(20*time.Millisecond), WithJitter(0.5), WithSeed(7))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
		if _, err := Recv(ctx, inbox); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if elapsed < 15*time.Millisecond || elapsed > 300*time.Millisecond {
			t.Errorf("delivery %d took %v, want ~20-30ms", i, elapsed)
		}
	}
}

func TestLossRateDropsSilently(t *testing.T) {
	n := New(WithLossRate(1.0), WithSeed(1))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	// Sender sees success; nothing arrives.
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatalf("lossy send errored: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := Recv(ctx, inbox); err == nil {
		t.Error("message survived 100% loss")
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestDroppedCountsDownSiteAndPartitionedLink(t *testing.T) {
	// Stats.Dropped must increment for both unreachability flavors: a
	// crashed destination and a cut link.
	n := New()
	defer n.Close()
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSite("c"); err != nil {
		t.Fatal(err)
	}
	n.SetDown("b", true)
	if err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("down-site send err = %v, want ErrUnreachable", err)
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Errorf("Dropped after down-site send = %d, want 1", got)
	}
	n.SetPartitioned("a", "c", true)
	if err := n.Send(Message{From: "a", To: "c"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned send err = %v, want ErrUnreachable", err)
	}
	st := n.Stats()
	if st.Dropped != 2 {
		t.Errorf("Dropped after partitioned send = %d, want 2", st.Dropped)
	}
	if st.Sent != 2 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentSendsAreRaceFree(t *testing.T) {
	// The shared rng and latency knobs are consulted under the network
	// mutex; hammer Send from many goroutines (with -race in CI) while
	// the knobs change underneath.
	n := New(WithLatency(time.Millisecond), WithJitter(0.5), WithSeed(7), WithLossRate(0.2))
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	go func() {
		for {
			select {
			case <-inbox:
			case <-drain:
				return
			}
		}
	}()
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = n.Send(Message{From: "a", To: "b"})
			}
		}()
	}
	// Mutate the knobs concurrently, as a fault schedule would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			n.SetLossRate(float64(i%3) * 0.1)
			n.SetLatency(time.Duration(i%2)*time.Millisecond, 0.3)
		}
	}()
	wg.Wait()
	n.Close()
	close(drain)
	if got := n.Stats().Sent; got != senders*per {
		t.Errorf("Sent = %d, want %d", got, senders*per)
	}
}

func TestSeededLossPatternIsDeterministic(t *testing.T) {
	// Two networks with the same seed and the same serialized send
	// sequence must make identical drop decisions.
	pattern := func() []bool {
		n := New(WithLossRate(0.5), WithSeed(99))
		defer n.Close()
		if _, err := n.AddSite("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddSite("b"); err != nil {
			t.Fatal(err)
		}
		var drops []bool
		var prev uint64
		for i := 0; i < 64; i++ {
			if err := n.Send(Message{From: "a", To: "b"}); err != nil {
				t.Fatal(err)
			}
			d := n.Stats().Dropped
			drops = append(drops, d > prev)
			prev = d
		}
		return drops
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop pattern diverged at send %d: %v vs %v", i, a, b)
		}
	}
}

func TestRuntimeKnobChanges(t *testing.T) {
	n := New()
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	// Loss 1.0: silent drop.
	n.SetLossRate(1.0)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	// Back to 0: delivery resumes, and a latency spike delays it.
	n.SetLossRate(0)
	n.SetLatency(50*time.Millisecond, 0)
	start := time.Now()
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~50ms spike", elapsed)
	}
	// Clamping.
	n.SetLossRate(-1)
	n.SetLatency(-time.Second, -2)
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recv(ctxT(t), inbox); err != nil {
		t.Fatal(err)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	n := New(WithLossRate(0.5), WithSeed(42))
	defer n.Close()
	inbox, _ := n.AddSite("b")
	if _, err := n.AddSite("a"); err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		if err := n.Send(Message{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for {
		if _, err := Recv(ctx, inbox); err != nil {
			break
		}
		delivered++
	}
	if delivered < total/4 || delivered > 3*total/4 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, total)
	}
}
