package site

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// threeSitesOpts is threeSites plus cluster tuning options.
func threeSitesOpts(t *testing.T, latency time.Duration, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Strategy: ChoppedQueues,
		Latency:  latency,
		Seed:     3,
		Placement: func(k storage.Key) simnet.SiteID {
			switch {
			case strings.HasPrefix(string(k), "ny:"):
				return "NY"
			case strings.HasPrefix(string(k), "la:"):
				return "LA"
			default:
				return "CHI"
			}
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 10 * time.Millisecond,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// conserveChain asserts the three-site money supply is intact.
func conserveChain(t *testing.T, c *Cluster) {
	t.Helper()
	total := c.Site("NY").Store.Get("ny:A") +
		c.Site("LA").Store.Get("la:B") +
		c.Site("CHI").Store.Get("chi:C")
	if total != 30000 {
		t.Errorf("conservation violated: total = %d, want 30000", total)
	}
}

// TestWithWorkersOptionPlumbs checks the functional option reaches the
// sites and the default stays at the historical pool size (satellite:
// WithWorkers).
func TestWithWorkersOptionPlumbs(t *testing.T) {
	c := threeSitesOpts(t, 0)
	if got := c.Site("NY").workers; got != defaultWorkers {
		t.Errorf("default workers = %d, want %d", got, defaultWorkers)
	}
	c1 := threeSitesOpts(t, 0, WithWorkers(1))
	if got := c1.Site("LA").workers; got != 1 {
		t.Errorf("WithWorkers(1) → workers = %d", got)
	}
	c8 := threeSitesOpts(t, 0, WithWorkers(8), WithActivationBatch(4))
	if got := c8.Site("CHI").workers; got != 8 {
		t.Errorf("WithWorkers(8) → workers = %d", got)
	}
	if got := c8.Site("CHI").actBatch; got != 4 {
		t.Errorf("WithActivationBatch(4) → actBatch = %d", got)
	}
}

// runChains submits n chain instances concurrently and requires every
// one to settle committed.
func runChains(t *testing.T, c *Cluster, n int) {
	t.Helper()
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(1)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Submit(ctx, 0)
			if err != nil {
				errs <- err
				return
			}
			if !res.Committed {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("chain submission failed: %v", err)
	}
}

// TestWorkerPoolSizesConserve runs the same concurrent chain load at
// workers=1 and workers=8: both must settle everything and conserve the
// money supply identically (satellite: WithWorkers conservation).
func TestWorkerPoolSizesConserve(t *testing.T) {
	for _, workers := range []int{1, 8} {
		c := threeSitesOpts(t, 0, WithWorkers(workers))
		runChains(t, c, 16)
		conserveChain(t, c)
		if got := c.Site("NY").Store.Get("ny:A"); got != 10000-16 {
			t.Errorf("workers=%d: ny:A = %d, want %d", workers, got, 10000-16)
		}
		if got := c.Site("CHI").Store.Get("chi:C"); got != 10000+16 {
			t.Errorf("workers=%d: chi:C = %d, want %d", workers, got, 10000+16)
		}
	}
}

// TestLegacyWireClusterSettles keeps the A/B baseline honest: the
// pre-batching transport must still settle the same workload.
func TestLegacyWireClusterSettles(t *testing.T) {
	c := threeSitesOpts(t, 0, WithLegacyWire())
	runChains(t, c, 8)
	conserveChain(t, c)
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10008 {
		t.Errorf("chi:C = %d, want 10008", got)
	}
}

// TestDoneBatchPayloadSettlesTracker delivers a coalesced doneBatch
// through the recoverable done queue and checks the origin's doneLoop
// unpacks every report into the tracker (coalesced settlement path).
func TestDoneBatchPayloadSettlesTracker(t *testing.T) {
	c := threeSitesOpts(t, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(1)}); err != nil {
		t.Fatal(err)
	}
	// Hand-register a tracker for a fake 3-piece instance at origin NY.
	const inst = uint64(777777)
	tr := newTracker(3)
	c.dist.mu.Lock()
	c.dist.trackers[inst] = tr
	c.dist.mu.Unlock()
	// LA reports all three pieces in ONE done-queue message.
	la := c.Site("LA")
	buf := la.queues.Buffer()
	buf.Enqueue("NY", doneQueue, doneBatch{Reports: []pieceDone{
		{Inst: inst, Piece: 0},
		{Inst: inst, Piece: 1},
		{Inst: inst, Piece: 2},
	}})
	la.queues.CommitSend(buf)
	select {
	case <-tr.done:
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced doneBatch never settled the tracker")
	}
	c.dist.mu.Lock()
	defer c.dist.mu.Unlock()
	if len(tr.pieces) != 3 {
		t.Errorf("tracker recorded %d pieces, want 3", len(tr.pieces))
	}
}

// TestBatchFlushCrashReplay crashes NY at fault.PointPreBatchFlush —
// after its successor activations are durable in the outbox but before
// the coalesced frame reaches the wire. The volatile flush buffer dies
// with the site; after Recover, retransmission must replay the staged
// batch from the durable outbox and the chain settles with conservation
// intact (satellite: crash mid-flush).
func TestBatchFlushCrashReplay(t *testing.T) {
	hook := &fault.CrashOnce{
		Point: fault.PointPreBatchFlush,
		Site:  "NY",
		Piece: -1,
	}
	c, err := NewCluster(Config{
		Strategy: ChoppedQueues,
		Seed:     11,
		Placement: func(k storage.Key) simnet.SiteID {
			switch {
			case strings.HasPrefix(string(k), "ny:"):
				return "NY"
			case strings.HasPrefix(string(k), "la:"):
				return "LA"
			default:
				return "CHI"
			}
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 10 * time.Millisecond,
		FaultHook:       hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(500)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if res, err := c.Submit(ctx, 0); err == nil {
			done <- res
		}
	}()
	waitFired(t, hook, "pre-batch-flush crash")
	// NY fail-stopped mid-flush: its successor activation for LA is
	// durable in the outbox but never hit the wire.
	time.Sleep(20 * time.Millisecond)
	c.Site("NY").Recover()
	select {
	case res := <-done:
		if !res.Committed {
			t.Fatalf("result = %+v, want committed", res)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("chain never settled through the mid-flush crash")
	}
	// Let the last acks drain, then check the books.
	time.Sleep(50 * time.Millisecond)
	if got := c.Site("NY").Store.Get("ny:A"); got != 9500 {
		t.Errorf("ny:A = %d, want 9500", got)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10500 {
		t.Errorf("chi:C = %d, want 10500", got)
	}
	conserveChain(t, c)
}

// TestQueueBatchingOptionPlumbs checks WithQueueBatching reaches the
// queue managers (flush behavior changes observably: synchronous flush
// with a huge batch still delivers).
func TestQueueBatchingOptionPlumbs(t *testing.T) {
	c := threeSitesOpts(t, 0, WithQueueBatching(256, 0))
	runChains(t, c, 4)
	conserveChain(t, c)
}
