package site

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// threeSites builds NY, LA and CHI with one account each.
func threeSites(t *testing.T, strategy Strategy, latency time.Duration) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Strategy: strategy,
		Latency:  latency,
		Seed:     3,
		Placement: func(k storage.Key) simnet.SiteID {
			switch {
			case strings.HasPrefix(string(k), "ny:"):
				return "NY"
			case strings.HasPrefix(string(k), "la:"):
				return "LA"
			default:
				return "CHI"
			}
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// chainProgram moves amount NY→LA→CHI in one transaction: three pieces
// at three sites.
func chainProgram(amount metric.Value) *txn.Program {
	return txn.MustProgram("chain",
		txn.AddOp("ny:A", -amount),
		txn.AddOp("la:B", amount), // passes through LA
		txn.AddOp("la:B", -amount),
		txn.AddOp("chi:C", amount),
	)
}

func TestThreeSiteChainSettles(t *testing.T) {
	c := threeSites(t, ChoppedQueues, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(500)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Site("NY").Store.Get("ny:A"); got != 9500 {
		t.Errorf("ny:A = %d, want 9500", got)
	}
	if got := c.Site("LA").Store.Get("la:B"); got != 10000 {
		t.Errorf("la:B = %d, want 10000 (pass-through)", got)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10500 {
		t.Errorf("chi:C = %d, want 10500", got)
	}
}

func TestThreeSiteChainPieceCount(t *testing.T) {
	c := threeSites(t, ChoppedQueues, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(1)}); err != nil {
		t.Fatal(err)
	}
	c.dist.mu.Lock()
	dp := c.dist.programs[0]
	c.dist.mu.Unlock()
	if got := dp.chopped.NumPieces(); got != 3 {
		t.Fatalf("pieces = %d, want 3 (one per site)", got)
	}
	want := []simnet.SiteID{"NY", "LA", "CHI"}
	for pi, site := range dp.pieceSite {
		if site != want[pi] {
			t.Errorf("piece %d at %s, want %s", pi, site, want[pi])
		}
	}
	// The LA and CHI pieces hang off the dependency tree; LA's two ops on
	// la:B live in the same piece, so CHI's piece conflicts with nothing
	// and parents to p1.
	if len(dp.children[0]) == 0 {
		t.Error("first piece has no dependents")
	}
}

func TestThreeSiteChainThroughMidCrash(t *testing.T) {
	// Crash the middle site while chains are settling; recovery must
	// deliver every piece exactly once.
	c := threeSites(t, ChoppedQueues, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(10)}); err != nil {
		t.Fatal(err)
	}
	const n = 5
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := c.Submit(ctx, 0); err != nil {
				errs <- err
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	c.Site("LA").Crash()
	time.Sleep(30 * time.Millisecond)
	c.Site("LA").Recover()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Site("NY").Store.Get("ny:A"); got != 10000-n*10 {
		t.Errorf("ny:A = %d, want %d", got, 10000-n*10)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10000+n*10 {
		t.Errorf("chi:C = %d, want %d (exactly once through crash)", got, 10000+n*10)
	}
	if got := c.Site("LA").Store.Get("la:B"); got != 10000 {
		t.Errorf("la:B = %d, want 10000", got)
	}
}

func TestThreeSite2PCMessageCost(t *testing.T) {
	// Under 2PC a three-site transaction costs 4 messages per
	// participant: 12 one-way messages.
	c := threeSites(t, TwoPhaseCommit, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(7)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("result = %+v", res)
	}
	if sent := c.Net.Stats().Sent; sent != 12 {
		t.Errorf("messages = %d, want 12 (4 per participant)", sent)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10007 {
		t.Errorf("chi:C = %d, want 10007", got)
	}
}

// TestDistributedGroupedSerializability records the distributed history
// and checks it with pieces/subtransactions grouped by their distributed
// transaction: 2PC must be serializable w.r.t. the distributed
// transactions; the chopped strategy must also be serializable here
// because transfers commute and the audits are whole... but audits are
// chopped at site boundaries, so audits may interleave (ESR): the check
// asserts conservation-bounded behavior instead.
func TestDistributedGroupedSerializability(t *testing.T) {
	c, err := NewCluster(Config{
		Strategy: TwoPhaseCommit,
		Seed:     9,
		Record:   true,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 100000},
			"LA": {"la:Y": 100000},
		},
		RetransmitEvery: 10 * time.Millisecond,
		OpDelay:         200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterPrograms(bankPrograms(100, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 30*time.Second)
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Submit(ctx, 0); err != nil {
				errCh <- err
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Submit(ctx, 1)
			if err != nil {
				errCh <- err
				return
			}
			if got := res.SumReads(); got != 200000 {
				errCh <- fmt.Errorf("2PC audit sum = %d, want exactly 200000", got)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	grouped := c.Recorder().CheckGrouped(c.GroupOf())
	if !grouped.Serializable {
		t.Errorf("2PC execution not serializable w.r.t. distributed txns: %v\n%s",
			grouped.Cycle, grouped.DOT())
	}
}

// TestChoppedSettlesOverLossyNetwork runs transfers across a network
// that silently drops a third of all messages: the recoverable queues'
// retransmission and dedup must still settle everything exactly once.
func TestChoppedSettlesOverLossyNetwork(t *testing.T) {
	c, err := NewCluster(Config{
		Strategy: ChoppedQueues,
		Seed:     11,
		LossRate: 0.33,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 100000},
			"LA": {"la:Y": 100000},
		},
		RetransmitEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterPrograms(bankPrograms(100, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	const n = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := c.Submit(ctx, 0)
			if err != nil {
				errs <- err
				return
			}
			if !res.Committed {
				errs <- fmt.Errorf("not settled: %+v", res)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 100000-n*100 {
		t.Errorf("ny:X = %d, want %d", got, 100000-n*100)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 100000+n*100 {
		t.Errorf("la:Y = %d, want %d (exactly once through loss)", got, 100000+n*100)
	}
}
