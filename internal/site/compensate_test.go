package site

import (
	"context"
	"strings"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// compCluster builds a two-branch cluster with compensation enabled.
func compCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Strategy:          ChoppedQueues,
		AllowCompensation: true,
		Seed:              5,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 10000},
			"LA": {"la:Y": 10000, "la:frozen": 0},
		},
		RetransmitEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// guardedTransfer debits NY, then credits LA unless the LA account is
// frozen — a rollback statement in the SECOND piece, which plain chopped
// execution must reject and compensation mode must handle.
func guardedTransfer(amount metric.Value) *txn.Program {
	return txn.MustProgram("guarded",
		txn.AddOp("ny:X", -amount),
		txn.WithAbortIf(
			txn.AddOp("la:frozen", 0), // probe the freeze flag
			func(v metric.Value) bool { return v != 0 },
		),
		txn.AddOp("la:Y", amount),
	)
}

func TestCompensationRejectedWithoutOptIn(t *testing.T) {
	c := twoBranches(t, ChoppedQueues, false, 0)
	if err := c.RegisterPrograms([]*txn.Program{guardedTransfer(100)}); err == nil {
		t.Fatal("rollback-unsafe cross-site program accepted without compensation")
	}
}

func TestCompensationRejectsNonInvertibleWrites(t *testing.T) {
	c := compCluster(t)
	bad := txn.MustProgram("bad",
		txn.SetOp("ny:X", 0), // not an invertible delta
		txn.WithAbortIf(txn.AddOp("la:Y", 1), func(metric.Value) bool { return false }),
	)
	if err := c.RegisterPrograms([]*txn.Program{bad}); err == nil {
		t.Fatal("non-invertible compensable program accepted")
	}
}

func TestCompensableCommitsWhenUnblocked(t *testing.T) {
	c := compCluster(t)
	if err := c.RegisterPrograms([]*txn.Program{guardedTransfer(300)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.RolledBack {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 9700 {
		t.Errorf("ny:X = %d, want 9700", got)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 10300 {
		t.Errorf("la:Y = %d, want 10300", got)
	}
}

func TestCompensationUndoesCommittedPredecessors(t *testing.T) {
	c := compCluster(t)
	if err := c.RegisterPrograms([]*txn.Program{guardedTransfer(300)}); err != nil {
		t.Fatal(err)
	}
	// Freeze the LA account: the second piece rolls back AFTER the NY
	// debit has already committed; compensation must restore it.
	c.Site("LA").Store.Set("la:frozen", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || !res.RolledBack || !res.Compensated {
		t.Fatalf("result = %+v, want compensated rollback", res)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 10000 {
		t.Errorf("ny:X = %d, want 10000 (debit compensated)", got)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 10000 {
		t.Errorf("la:Y = %d, want 10000 (credit never applied)", got)
	}
}

func TestCompensationSurvivesCrash(t *testing.T) {
	c := compCluster(t)
	if err := c.RegisterPrograms([]*txn.Program{guardedTransfer(200)}); err != nil {
		t.Fatal(err)
	}
	c.Site("LA").Store.Set("la:frozen", 1)
	done := make(chan *Result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := c.Submit(ctx, 0)
		if err == nil {
			done <- res
		}
	}()
	// Crash/recover NY while the compensation is in flight.
	time.Sleep(15 * time.Millisecond)
	c.Site("NY").Crash()
	time.Sleep(20 * time.Millisecond)
	c.Site("NY").Recover()
	select {
	case res := <-done:
		if !res.RolledBack {
			t.Fatalf("result = %+v", res)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("compensated rollback never settled through the crash")
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 10000 {
		t.Errorf("ny:X = %d, want 10000 (compensated exactly once)", got)
	}
}

func TestCompensableFirstPieceRollback(t *testing.T) {
	// A rollback in the FIRST piece of a compensable program follows the
	// normal synchronous path: nothing committed, nothing to compensate.
	c := compCluster(t)
	p := txn.MustProgram("firstfail",
		txn.WithAbortIf(txn.AddOp("ny:X", -999999), func(v metric.Value) bool { return v < 999999 }),
		txn.WithAbortIf(txn.AddOp("la:Y", 999999), func(metric.Value) bool { return false }),
	)
	if err := c.RegisterPrograms([]*txn.Program{p}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := c.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack || res.Compensated {
		t.Fatalf("result = %+v, want plain rollback", res)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 10000 {
		t.Errorf("ny:X = %d, want 10000", got)
	}
}
