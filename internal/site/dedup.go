package site

import (
	"fmt"
	"sync"

	"asynctp/internal/storage"
)

// pieceKey identifies one piece application: the distributed instance,
// the piece index, and whether it is the compensating (inverse) run.
type pieceKey struct {
	inst  uint64
	piece int
	comp  bool
}

// marker returns the durable storage key whose presence proves the
// piece committed. The marker is written in the same commit batch as
// the piece's effects, so "applied" and "marker present" are atomic in
// the journal — the anchor of the at-least-once → exactly-once
// argument.
func (k pieceKey) marker() storage.Key {
	tag := "applied"
	if k.comp {
		tag = "comp"
	}
	return storage.Key(fmt.Sprintf("__%s/%d/%d", tag, k.inst, k.piece))
}

// dedupTable is a site's in-memory index of applied pieces, keyed on
// (inst, pieceIdx, comp). It exists because recoverable queues deliver
// at least once: an activation redelivered after a crash in the
// commit→ack window must be recognized, not re-applied. The table is
// volatile — a crash wipes it — so lookups fall back to the durable
// marker keys recovered from the store journal, and hits repopulate the
// cache.
type dedupTable struct {
	mu    sync.Mutex
	seen  map[pieceKey]bool
	store *storage.Store
}

// newDedupTable builds the table over the site's store.
func newDedupTable(store *storage.Store) *dedupTable {
	return &dedupTable{seen: make(map[pieceKey]bool), store: store}
}

// applied reports whether the piece has already committed, consulting
// the in-memory set first and the durable marker second.
func (d *dedupTable) applied(k pieceKey) bool {
	d.mu.Lock()
	if d.seen[k] {
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	if d.store.Has(k.marker()) {
		d.record(k)
		return true
	}
	return false
}

// record marks the piece applied in the in-memory set (the durable
// marker is written by the piece's own commit batch).
func (d *dedupTable) record(k pieceKey) {
	d.mu.Lock()
	d.seen[k] = true
	d.mu.Unlock()
}

// reset wipes the volatile set and rebinds the store — crash recovery.
// Durable markers in the recovered journal keep answering through the
// fallback path.
func (d *dedupTable) reset(store *storage.Store) {
	d.mu.Lock()
	d.seen = make(map[pieceKey]bool)
	d.store = store
	d.mu.Unlock()
}

// Len returns the number of cached entries (tests).
func (d *dedupTable) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}
