package site

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/storage/driver"
	"asynctp/internal/txn"
)

// diskCluster builds the NY/LA/CHI chain cluster over the disk driver
// rooted at dir. instBase offsets instance IDs for restart incarnations.
func diskCluster(t *testing.T, dir string, instBase uint64) *Cluster {
	t.Helper()
	drv, err := driver.New("disk", driver.Params{
		Dir:       dir,
		SyncEvery: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Strategy: ChoppedQueues,
		Storage:  drv,
		Seed:     3,
		Placement: func(k storage.Key) simnet.SiteID {
			switch {
			case strings.HasPrefix(string(k), "ny:"):
				return "NY"
			case strings.HasPrefix(string(k), "la:"):
				return "LA"
			default:
				return "CHI"
			}
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 10 * time.Millisecond,
		InstanceBase:    instBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiskChainSettlesAndMatchesMem(t *testing.T) {
	// The same deterministic chain workload through the full site
	// pipeline on both drivers must leave identical account state.
	run := func(c *Cluster) map[simnet.SiteID]metric.Value {
		t.Helper()
		defer c.Close()
		if err := c.RegisterPrograms([]*txn.Program{chainProgram(250)}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := 0; i < 4; i++ {
			res, err := c.Submit(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed {
				t.Fatalf("submission %d: %+v", i, res)
			}
		}
		return map[simnet.SiteID]metric.Value{
			"NY":  c.Site("NY").Store.Get("ny:A"),
			"LA":  c.Site("LA").Store.Get("la:B"),
			"CHI": c.Site("CHI").Store.Get("chi:C"),
		}
	}
	mem := run(threeSites(t, ChoppedQueues, 0))
	disk := run(diskCluster(t, t.TempDir(), 0))
	for id, v := range mem {
		if disk[id] != v {
			t.Errorf("site %s: mem=%d disk=%d", id, v, disk[id])
		}
	}
	if mem["NY"] != 10000-4*250 || mem["CHI"] != 10000+4*250 {
		t.Errorf("workload did not settle: %+v", mem)
	}
}

func TestDiskChainThroughMidCrash(t *testing.T) {
	// Crash the middle site while chains settle; recovery replays the
	// real WAL files and exactly-once must hold.
	dir := t.TempDir()
	c := diskCluster(t, dir, 0)
	defer c.Close()
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(10)}); err != nil {
		t.Fatal(err)
	}
	const n = 5
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := c.Submit(ctx, 0); err != nil {
				errs <- err
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	c.Site("LA").Crash()
	time.Sleep(30 * time.Millisecond)
	c.Site("LA").Recover()
	if err := c.Site("LA").RecoverError(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Site("NY").Store.Get("ny:A"); got != 10000-n*10 {
		t.Errorf("ny:A = %d, want %d", got, 10000-n*10)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10000+n*10 {
		t.Errorf("chi:C = %d, want %d (exactly once through crash)", got, 10000+n*10)
	}
	if got := c.Site("LA").Store.Get("la:B"); got != 10000 {
		t.Errorf("la:B = %d, want 10000", got)
	}
}

func TestDiskProcessRestartResumesFromImage(t *testing.T) {
	// Simulate a full process restart: run a workload, tear the cluster
	// down, build a brand-new cluster over the same directory. The new
	// incarnation must see the settled balances, keep exactly-once for
	// redelivered traffic, and mint non-colliding instance IDs.
	dir := t.TempDir()
	c := diskCluster(t, dir, 0)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(100)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	c.Close()

	c2 := diskCluster(t, dir, 1_000_000)
	defer c2.Close()
	// RegisterPrograms re-stages origin successors from durable markers;
	// every one must dedup (the first run settled) and leave state alone.
	if err := c2.RegisterPrograms([]*txn.Program{chainProgram(100)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		idle := true
		for _, id := range []simnet.SiteID{"NY", "LA", "CHI"} {
			if !c2.Site(id).QueuesIdle() {
				idle = false
			}
		}
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted cluster never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c2.Site("NY").Store.Get("ny:A"); got != 10000-3*100 {
		t.Errorf("ny:A after restart = %d, want %d", got, 10000-3*100)
	}
	if got := c2.Site("CHI").Store.Get("chi:C"); got != 10000+3*100 {
		t.Errorf("chi:C after restart = %d, want %d (re-staging must dedup)", got, 10000+3*100)
	}

	// New submissions in the restarted incarnation settle on top.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	res, err := c2.Submit(ctx2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("post-restart submission: %+v", res)
	}
	if got := c2.Site("CHI").Store.Get("chi:C"); got != 10000+4*100 {
		t.Errorf("chi:C after restart+submit = %d, want %d", got, 10000+4*100)
	}
}
