package site

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asynctp/internal/chop"
	"asynctp/internal/commit"
	"asynctp/internal/dc"
	"asynctp/internal/fault"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/queue"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/tracectx"
	"asynctp/internal/txn"
)

// The chopped-queue payloads must round-trip through the disk driver's
// serialized queue image (gob), so their concrete types are registered
// up front.
func init() {
	queue.RegisterPayloadType(activation{})
	queue.RegisterPayloadType(pieceDone{})
	queue.RegisterPayloadType(doneBatch{})
}

// Message kinds of the chopped-queue protocol.
const (
	// KindPieceDone notifies the origin site that one piece committed.
	// (Retained for routing compatibility; reports now ride the
	// recoverable queues so they survive message loss.)
	KindPieceDone = "piece.done"
	// pieceQueue is the recoverable queue carrying piece activations.
	pieceQueue = "pieces"
	// doneQueue is the recoverable queue carrying settlement reports
	// back to the origin site.
	doneQueue = "done"
)

// subTxn is the 2PC prepare payload: one site's slice of a distributed
// transaction.
type subTxn struct {
	Ops   []txn.Op
	Class txn.Class
	Spec  metric.Spec // site share of the ε-spec (split evenly)
	Name  string
	Inst  uint64 // distributed transaction identity (history group)
	Piece int    // stable per-site ordinal (trace piece index)
}

// subResult is the 2PC prepare result.
type subResult struct {
	Reads []txn.ReadRec
}

// activation rides a recoverable queue to start a dependent piece (or,
// with Compensate set, the inverse of an already-committed piece).
type activation struct {
	Inst       uint64
	Origin     simnet.SiteID
	TxType     int
	Piece      int
	Compensate bool
}

// doneBatch coalesces the settlement reports one worker produced for a
// single origin while draining one activation batch: one done-queue
// message (and so one wire payload) instead of one per piece.
type doneBatch struct {
	Reports []pieceDone
}

// pieceDone reports progress back to the origin: a committed piece, a
// committed compensation (Comp), or a business rollback at piece
// RolledAt (> 0) that triggered compensation of its predecessors.
type pieceDone struct {
	Inst     uint64
	Piece    int
	Comp     bool
	RolledAt int // 0 means "not a rollback report"
	Reads    []txn.ReadRec
	Imported metric.Fuzz
	Exported metric.Fuzz
	// Ctx carries the reporter's trace context (parent = the reporting
	// piece's span) so the origin can record the report-wire and ack
	// spans of the merged trace. Reports coalesce into doneBatch
	// messages spanning many instances, so the context rides each
	// report rather than the queue message. Zero when tracing is off.
	Ctx tracectx.Ctx
}

// Result describes one distributed submission.
type Result struct {
	// Committed reports full settlement (every piece / all sites).
	Committed bool
	// RolledBack reports a business rollback (first piece / any vote NO,
	// or a compensated later piece).
	RolledBack bool
	// Compensated reports that committed predecessor pieces were undone
	// by inverse pieces after a later rollback.
	Compensated bool
	// Initiation is the latency until the caller could proceed: the 2PC
	// decision, or the first piece's local commit under chopping.
	Initiation time.Duration
	// Settlement is the latency until every piece committed (equals
	// Initiation under 2PC).
	Settlement time.Duration
	// Reads are all values observed across sites/pieces.
	Reads []txn.ReadRec
	// Imported is the total fuzziness imported (DC runs).
	Imported metric.Fuzz
}

// SumReads totals the observed values.
func (r *Result) SumReads() metric.Value {
	var total metric.Value
	for _, rec := range r.Reads {
		total += rec.Value
	}
	return total
}

// distProgram is a registered distributed transaction type.
type distProgram struct {
	program *txn.Program
	// compensable marks programs with rollback statements beyond the
	// first piece, executed under the compensation protocol.
	compensable bool
	// chopped is the site-boundary chopping (ChoppedQueues strategy).
	chopped *chop.Chopped
	// pieceSite is each piece's owning site.
	pieceSite []simnet.SiteID
	// pieceSpecs is each piece's ε-spec share.
	pieceSpecs []metric.Spec
	// children lists dependent pieces per piece (dependency tree).
	children [][]int
}

// tracker follows one chopped instance to settlement at its origin.
// Progress is kept per piece index, not as counters: settlement reports
// ride at-least-once queues and are re-sent after crash redeliveries, so
// duplicates must collapse instead of inflating the count.
type tracker struct {
	total     int
	pieces    map[int]bool // committed pieces, by index
	comps     map[int]bool // committed compensations, by index
	rolledAt  int          // -1 until a rollback report arrives
	completed bool
	reads     []txn.ReadRec
	imported  metric.Fuzz
	done      chan struct{}
}

// newTracker builds a tracker for an instance with n pieces.
func newTracker(n int) *tracker {
	return &tracker{
		total:    n,
		pieces:   make(map[int]bool),
		comps:    make(map[int]bool),
		rolledAt: -1,
		done:     make(chan struct{}),
	}
}

// settled reports whether the instance reached its terminal state:
// either every piece committed, or the rollback piece's predecessors all
// committed and then compensated.
func (tr *tracker) settled() bool {
	if tr.rolledAt >= 0 {
		for pi := 0; pi < tr.rolledAt; pi++ {
			if !tr.pieces[pi] || !tr.comps[pi] {
				return false
			}
		}
		return true
	}
	return len(tr.pieces) == tr.total
}

// distState is the cluster's distributed-execution state.
type distState struct {
	mu       sync.Mutex
	programs []*distProgram
	trackers map[uint64]*tracker
}

// RegisterPrograms declares the distributed job stream. For the
// ChoppedQueues strategy each program is chopped at site boundaries
// (consecutive ops on the same site form a piece) — the paper's "each
// piece resides at only one site" assumption — and each piece gets an
// even share of the transaction's ε-spec, as in the Section 4.1 example
// ($10,000 split $5,000 + $5,000 across two branch pieces). Programs
// with rollback statements outside the first piece are rejected
// (rollback-safety).
func (c *Cluster) RegisterPrograms(programs []*txn.Program) error {
	for _, p := range programs {
		if err := p.Validate(); err != nil {
			return err
		}
		dp := &distProgram{program: p}
		// Cut at site boundaries.
		var cuts []int
		for i := 1; i < len(p.Ops); i++ {
			if c.placement(p.Ops[i].Key) != c.placement(p.Ops[i-1].Key) {
				cuts = append(cuts, i)
			}
		}
		chopped, err := chop.FromCuts(p, cuts)
		if err != nil {
			if !c.compensate {
				return fmt.Errorf("site: %q cannot be chopped at site boundaries: %w", p.Name, err)
			}
			// Compensation mode: accept the rollback-unsafe chopping if
			// every write is an invertible commutative delta.
			chopped, err = chop.FromCutsCompensable(p, cuts)
			if err != nil {
				return fmt.Errorf("site: %q: %w", p.Name, err)
			}
			for _, op := range p.Ops {
				if op.Kind == txn.OpWrite && !op.Commutative {
					return fmt.Errorf(
						"site: %q needs compensation but write to %q is not an invertible delta",
						p.Name, op.Key)
				}
			}
			dp.compensable = true
		}
		dp.chopped = chopped
		for pi := 0; pi < chopped.NumPieces(); pi++ {
			ops := chopped.PieceOps(pi)
			siteID := c.placement(ops[0].Key)
			for _, op := range ops {
				if c.placement(op.Key) != siteID {
					return fmt.Errorf("site: %q piece %d spans sites", p.Name, pi)
				}
			}
			dp.pieceSite = append(dp.pieceSite, siteID)
		}
		n := chopped.NumPieces()
		dp.pieceSpecs = make([]metric.Spec, n)
		for pi := range dp.pieceSpecs {
			dp.pieceSpecs[pi] = metric.Spec{
				Import: p.Spec.Import.Div(n),
				Export: p.Spec.Export.Div(n),
			}
		}
		// Dependency tree (Figure 2): parent = latest conflicting earlier
		// sibling, else the first piece. Compensable programs run as a
		// strict chain so that a rollback at piece k implies exactly
		// pieces 0..k-1 committed.
		parents := make([]int, n)
		parents[0] = -1
		dp.children = make([][]int, n)
		if dp.compensable {
			for q := 1; q < n; q++ {
				parents[q] = q - 1
				dp.children[q-1] = append(dp.children[q-1], q)
			}
		} else {
			for q := 1; q < n; q++ {
				parent := 0
				for pi := q - 1; pi >= 1; pi-- {
					if opsConflictAcross(chopped.PieceOps(pi), chopped.PieceOps(q)) {
						parent = pi
						break
					}
				}
				parents[q] = parent
				dp.children[parent] = append(dp.children[parent], q)
			}
		}
		c.dist.mu.Lock()
		c.dist.programs = append(c.dist.programs, dp)
		c.dist.mu.Unlock()
	}
	// A process restarted against a durable disk image may hold origin
	// markers from its previous incarnation; now that the program table
	// exists, re-stage their successors (no-op on fresh stores).
	if c.Strategy == ChoppedQueues {
		for _, s := range c.sites {
			s.restageOrigins()
		}
	}
	return nil
}

// inverseOps builds the compensating operations for a committed piece:
// each commutative delta write is re-applied with the opposite delta
// (reads and rollback predicates are dropped). Registration guarantees
// every write in a compensable program is a pure commutative delta, so
// Update(0) recovers the delta.
func inverseOps(ops []txn.Op) []txn.Op {
	var out []txn.Op
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if op.Kind != txn.OpWrite {
			continue
		}
		delta := op.Update(0)
		out = append(out, txn.AddOp(op.Key, -delta))
	}
	return out
}

// opsConflictAcross reports whether any op pair conflicts.
func opsConflictAcross(a, b []txn.Op) bool {
	for _, x := range a {
		for _, y := range b {
			if txn.OpsConflict(x, y) {
				return true
			}
		}
	}
	return false
}

// Submit runs one instance of registered program ti and waits for
// settlement (or ctx end). Under 2PC, initiation == settlement; under
// chopped queues, initiation is the first piece's commit.
func (c *Cluster) Submit(ctx context.Context, ti int) (*Result, error) {
	c.dist.mu.Lock()
	if ti < 0 || ti >= len(c.dist.programs) {
		c.dist.mu.Unlock()
		return nil, fmt.Errorf("site: program index %d out of range", ti)
	}
	dp := c.dist.programs[ti]
	c.dist.mu.Unlock()
	switch c.Strategy {
	case ChoppedQueues:
		return c.submitChopped(ctx, ti, dp)
	default:
		return c.submit2PC(ctx, dp)
	}
}

// ---------------------------------------------------------------------
// 2PC strategy
// ---------------------------------------------------------------------

// submit2PC runs the whole transaction as subtransactions under 2PC,
// coordinated from the first op's site.
func (c *Cluster) submit2PC(ctx context.Context, dp *distProgram) (*Result, error) {
	start := time.Now()
	// Split ops by site, preserving op order within each site.
	bySite := make(map[simnet.SiteID][]txn.Op)
	for _, op := range dp.program.Ops {
		siteID := c.placement(op.Key)
		bySite[siteID] = append(bySite[siteID], op)
	}
	spec := metric.Spec{
		Import: dp.program.Spec.Import.Div(len(bySite)),
		Export: dp.program.Spec.Export.Div(len(bySite)),
	}
	// Stable per-site piece ordinals for trace identity.
	siteIDs := make([]simnet.SiteID, 0, len(bySite))
	for siteID := range bySite {
		siteIDs = append(siteIDs, siteID)
	}
	sort.Slice(siteIDs, func(a, b int) bool { return siteIDs[a] < siteIDs[b] })
	ordinal := make(map[simnet.SiteID]int, len(siteIDs))
	for i, siteID := range siteIDs {
		ordinal[siteID] = i
	}
	payloads := make(map[simnet.SiteID]any, len(bySite))
	for siteID, ops := range bySite {
		payloads[siteID] = subTxn{
			Ops:   ops,
			Class: dp.program.Class(),
			Spec:  spec,
			Name:  dp.program.Name,
			Piece: ordinal[siteID],
		}
	}
	inst := c.nextInstID()
	for siteID, payload := range payloads {
		st := payload.(subTxn)
		st.Inst = inst
		payloads[siteID] = st
	}
	origin := c.sites[c.placement(dp.program.Ops[0].Key)]
	if origin == nil {
		return nil, fmt.Errorf("site: program %q originates at remote site %s",
			dp.program.Name, c.placement(dp.program.Ops[0].Key))
	}
	txid := fmt.Sprintf("%s-%d", dp.program.Name, inst)
	c.obs.TxnBegin(int64(inst), dp.program.Name)
	c.obs.BindBudget(int64(inst), dp.program.Name, dp.program.Class().String(),
		c.Strategy.String(), dp.program.Spec.Import)

	for {
		results, err := origin.node.Execute(ctx, txid, payloads)
		elapsed := time.Since(start)
		res := &Result{Initiation: elapsed, Settlement: elapsed}
		switch {
		case err == nil:
			res.Committed = true
			for _, r := range results {
				if sr, ok := r.(subResult); ok {
					res.Reads = append(res.Reads, sr.Reads...)
				}
			}
			c.obs.TxnEnd(int64(inst), true)
			return res, nil
		case errors.Is(err, commit.ErrAborted):
			res.RolledBack = true
			c.obs.TxnEnd(int64(inst), false)
			return res, nil
		case errors.Is(err, commit.ErrSystemAbort) && ctx.Err() == nil:
			// Distributed deadlock or divergence refusal: retry with a
			// fresh transaction id.
			txid = fmt.Sprintf("%s-%d", dp.program.Name, c.nextInstID())
			continue
		default:
			c.obs.TxnEnd(int64(inst), false)
			return res, err
		}
	}
}

// prepare2PC is the participant hook: execute the subtransaction, keep
// its locks, vote.
func (s *Site) prepare2PC(ctx context.Context, txid string, payload any) (any, error) {
	st, ok := payload.(subTxn)
	if !ok {
		return nil, errors.New("site: bad prepare payload")
	}
	s.mu.Lock()
	locks := s.locks
	store := s.Store
	ctl := s.ctl
	s.mu.Unlock()

	// Bound lock waits: distributed deadlocks are invisible to per-site
	// detectors; a timeout converts them into retryable system votes.
	ctx, cancel := context.WithTimeout(ctx, s.lockTimeout)
	defer cancel()
	owner := s.cluster.gen.Next()
	s.cluster.recordGroup(owner, st.Inst)
	var recObs txn.Observer
	if s.cluster.rec != nil {
		recObs = s.cluster.rec
	}
	rec := obs.TeeTxnObserver(recObs, s.cluster.obs.ExecObserver())
	s.cluster.obs.PieceBegin(int64(owner), int64(st.Inst), st.Piece,
		string(s.ID), st.Name+"@"+string(s.ID), st.Class,
		obs.PieceSpanID(st.Inst, st.Piece, false), obs.RootSpanID(st.Inst), "")
	if rec != nil {
		rec.Begin(owner, st.Name+"@"+string(s.ID), st.Class)
	}
	if ctl != nil {
		prog := &txn.Program{Name: st.Name + "@" + string(s.ID), Ops: st.Ops, Spec: st.Spec}
		if err := ctl.Register(owner, dc.Info{
			Class:   st.Class,
			Import:  st.Spec.Import,
			Export:  st.Spec.Export,
			Program: prog,
		}); err != nil {
			return nil, err
		}
	}
	pt := &preparedTxn{owner: owner, undo: make(map[storage.Key]metric.Value)}
	var reads []txn.ReadRec
	fail := func(err error) (any, error) {
		for k, v := range pt.undo {
			store.Set(k, v)
		}
		locks.ReleaseAll(owner)
		if ctl != nil {
			ctl.Unregister(owner)
		}
		if rec != nil {
			rec.Abort(owner, err)
		}
		return nil, err
	}
	for _, op := range st.Ops {
		mode := lock.Shared
		if op.Kind == txn.OpWrite {
			mode = lock.Exclusive
		}
		if err := locks.Acquire(ctx, owner, op.Key, mode); err != nil {
			return fail(err)
		}
		if s.opDelay > 0 {
			txn.SimWork(s.opDelay)
		}
		old := store.Get(op.Key)
		if op.AbortIf != nil && op.AbortIf(old) {
			return fail(fmt.Errorf("site: rollback statement: %w", commit.ErrBusinessVote))
		}
		switch op.Kind {
		case txn.OpRead:
			reads = append(reads, txn.ReadRec{Key: op.Key, Value: old})
			if rec != nil {
				rec.Read(owner, op.Key, old)
			}
		case txn.OpWrite:
			if _, seen := pt.undo[op.Key]; !seen {
				pt.undo[op.Key] = old
			}
			val := op.Update(old)
			store.Set(op.Key, val)
			if rec != nil {
				rec.Write(owner, op.Key, old, val, op.Commutative)
			}
		}
	}
	finals := make(map[storage.Key]metric.Value)
	for k := range pt.undo {
		finals[k] = store.Get(k)
	}
	for k, v := range finals {
		pt.batch = append(pt.batch, storage.Write{Key: k, Value: v})
	}
	s.mu.Lock()
	s.prepared[txid] = pt
	s.mu.Unlock()
	return subResult{Reads: reads}, nil
}

// commit2PC finalizes a prepared subtransaction.
func (s *Site) commit2PC(txid string) {
	s.mu.Lock()
	pt := s.prepared[txid]
	delete(s.prepared, txid)
	locks := s.locks
	ctl := s.ctl
	s.mu.Unlock()
	if pt == nil {
		return
	}
	// The writes are already in place; journal them as committed.
	_ = s.Store.Apply(pt.batch)
	locks.ReleaseAll(pt.owner)
	var imported, exported metric.Fuzz
	if ctl != nil {
		imported, exported = ctl.Unregister(pt.owner)
	}
	s.cluster.obs.PieceSettle(int64(pt.owner), imported, exported)
	if s.cluster.rec != nil {
		s.cluster.rec.Commit(pt.owner)
	}
	if eo := s.cluster.obs.ExecObserver(); eo != nil {
		eo.Commit(pt.owner)
	}
}

// abort2PC rolls back a prepared subtransaction.
func (s *Site) abort2PC(txid string) {
	s.mu.Lock()
	pt := s.prepared[txid]
	delete(s.prepared, txid)
	locks := s.locks
	ctl := s.ctl
	s.mu.Unlock()
	if pt == nil {
		return
	}
	for k, v := range pt.undo {
		s.Store.Set(k, v)
	}
	locks.ReleaseAll(pt.owner)
	var imported, exported metric.Fuzz
	if ctl != nil {
		imported, exported = ctl.Unregister(pt.owner)
	}
	s.cluster.obs.PieceSettle(int64(pt.owner), imported, exported)
	if s.cluster.rec != nil {
		s.cluster.rec.Abort(pt.owner, commit.ErrAborted)
	}
	if eo := s.cluster.obs.ExecObserver(); eo != nil {
		eo.Abort(pt.owner, commit.ErrAborted)
	}
}

// ---------------------------------------------------------------------
// Chopped-queues strategy
// ---------------------------------------------------------------------

// submitChopped runs the first piece at its site, activates dependents
// through recoverable queues, and waits for settlement.
func (c *Cluster) submitChopped(ctx context.Context, ti int, dp *distProgram) (*Result, error) {
	start := time.Now()
	origin := c.sites[dp.pieceSite[0]]
	if origin == nil {
		// Multi-process deployments submit each transaction at the process
		// owning its first piece; remote-origin programs are someone
		// else's to initiate.
		return nil, fmt.Errorf("site: program %q originates at remote site %s",
			dp.program.Name, dp.pieceSite[0])
	}
	inst := c.nextInstID()
	c.obs.TxnBegin(int64(inst), dp.program.Name)
	c.obs.BindBudget(int64(inst), dp.program.Name, dp.program.Class().String(),
		c.Strategy.String(), dp.program.Spec.Import)
	tr := newTracker(dp.chopped.NumPieces())
	c.dist.mu.Lock()
	c.dist.trackers[inst] = tr
	c.dist.mu.Unlock()
	defer func() {
		c.dist.mu.Lock()
		delete(c.dist.trackers, inst)
		c.dist.mu.Unlock()
	}()

	done, err := origin.runPiece(ctx, activation{
		Inst: inst, Origin: origin.ID, TxType: ti, Piece: 0,
	}, dp)
	if err != nil {
		c.obs.TxnEnd(int64(inst), false)
		if errors.Is(err, txn.ErrRollback) {
			return &Result{
				RolledBack: true,
				Initiation: time.Since(start),
				Settlement: time.Since(start),
			}, nil
		}
		return nil, err
	}
	initiation := time.Since(start)
	c.recordDone(done)

	select {
	case <-tr.done:
	case <-ctx.Done():
		c.obs.TxnEnd(int64(inst), false)
		return nil, ctx.Err()
	}
	c.dist.mu.Lock()
	res := &Result{
		Committed:   tr.rolledAt < 0,
		RolledBack:  tr.rolledAt >= 0,
		Compensated: tr.rolledAt >= 0,
		Initiation:  initiation,
		Settlement:  time.Since(start),
		Reads:       append([]txn.ReadRec(nil), tr.reads...),
		Imported:    tr.imported,
	}
	c.dist.mu.Unlock()
	c.obs.TxnEnd(int64(inst), res.Committed)
	return res, nil
}

// nextInstID hands out instance IDs.
func (c *Cluster) nextInstID() uint64 {
	c.nextInst.Lock()
	defer c.nextInst.Unlock()
	c.instSeq++
	return c.instSeq
}

// errInjectedCrash is the sentinel a fault hook raises out of runPiece:
// the piece committed but the site fail-stops before staging its
// successors and report (fault.PointPreReport).
var errInjectedCrash = errors.New("site: fault-injected crash")

// stageChildren durably enqueues the dependent activations of a
// committed piece. Safe to repeat: receivers dedup application on
// (inst, piece) and the origin's tracker dedups reports.
func (s *Site) stageChildren(act activation, dp *distProgram) {
	buf := s.queues.Buffer()
	obsP := s.cluster.obs
	for _, child := range dp.children[act.Piece] {
		// The child's trace context names this committed piece's span
		// as the remote parent (zero ctx when tracing is off).
		ctx := obsP.SpanCtx(act.Inst, obs.PieceSpanID(act.Inst, act.Piece, false))
		buf.EnqueueCtx(dp.pieceSite[child], pieceQueue, activation{
			Inst: act.Inst, Origin: act.Origin, TxType: act.TxType, Piece: child,
		}, ctx)
	}
	if buf.Len() > 0 {
		var t0 int64
		if obsP.SpansOn() {
			t0 = time.Now().UnixNano()
		}
		s.queues.CommitSend(buf)
		s.persistQueues()
		if t0 > 0 {
			// The durable-enqueue wait (queue image persistence — a real
			// fsync under the disk driver) is the piece's fsync phase.
			obsP.SpanFsync(act.Inst, obs.PieceSpanID(act.Inst, act.Piece, false),
				act.Piece, false, t0, time.Now().UnixNano())
		}
	}
}

// restageOrigins re-stages the successor activations of every origin
// (piece 0) commit recorded in the durable store. Non-origin pieces
// ride recoverable queues, so their lost stagings are resurrected by
// redelivery; piece 0 runs directly under Submit and has no queue
// behind it — after a crash (or a process restart against a disk
// image) the `__applied/<inst>/0` marker is the only witness that its
// children were owed. The marker value carries the program type, and
// staging is idempotent: downstream dedup collapses re-activations,
// and trackers of long-settled instances simply ignore the reports.
func (s *Site) restageOrigins() {
	s.cluster.dist.mu.Lock()
	programs := append([]*distProgram(nil), s.cluster.dist.programs...)
	s.cluster.dist.mu.Unlock()
	if len(programs) == 0 {
		return
	}
	for _, key := range s.Store.Keys() {
		name := string(key)
		rest, ok := strings.CutPrefix(name, "__applied/")
		if !ok {
			continue
		}
		instStr, pieceStr, ok := strings.Cut(rest, "/")
		if !ok || pieceStr != "0" {
			continue
		}
		inst, err := strconv.ParseUint(instStr, 10, 64)
		if err != nil {
			continue
		}
		ti := int(s.Store.Get(key)) - 1
		if ti < 0 || ti >= len(programs) {
			continue
		}
		s.stageChildren(activation{Inst: inst, Origin: s.ID, TxType: ti, Piece: 0}, programs[ti])
	}
}

// runPiece executes piece act.Piece of dp at site s, retrying system
// aborts until commit (resubmission of rollback-safe pieces), then
// stages the dependent activations through the recoverable queue in the
// same commit scope. It returns the pieceDone report.
func (s *Site) runPiece(ctx context.Context, act activation, dp *distProgram) (pieceDone, error) {
	// Exactly-once application: redelivered activations (crash between a
	// piece's commit and its queue ack) must not re-apply the writes. The
	// dedup table answers from memory or from the durable marker key that
	// the piece's own commit batch wrote — "piece applied" and "marker
	// present" are atomic in the journal.
	key := pieceKey{inst: act.Inst, piece: act.Piece, comp: act.Compensate}
	if s.applied.applied(key) {
		// Redelivered after a crash in the commit→ack window. The piece's
		// effects are durable, but the crash may have eaten its successor
		// activations, so re-stage them; duplicates collapse downstream.
		if !act.Compensate {
			s.stageChildren(act, dp)
		}
		return pieceDone{Inst: act.Inst, Piece: act.Piece, Comp: act.Compensate}, nil
	}
	marker := key.marker()
	var body []txn.Op
	name := fmt.Sprintf("%s/p%d", dp.program.Name, act.Piece+1)
	if act.Compensate {
		body = inverseOps(dp.chopped.PieceOps(act.Piece))
		name = fmt.Sprintf("%s/p%d~undo", dp.program.Name, act.Piece+1)
	} else {
		body = append(body, dp.chopped.PieceOps(act.Piece)...)
	}
	// The marker value encodes the program type (TxType+1, so it is
	// never zero): recovery can read it back and re-stage an origin
	// piece's successors without any volatile context.
	ops := append(append([]txn.Op(nil), body...), txn.SetOp(marker, metric.Value(act.TxType+1)))
	prog := &txn.Program{
		Name: name,
		Ops:  ops,
		Spec: dp.pieceSpecs[act.Piece],
	}
	class := dp.program.Class()
	// The piece span's tree edge: origin pieces hang off the root span
	// (opened in this process by submitChopped); activation-delivered
	// pieces hang off the mailbox span the worker recorded when it
	// picked the activation up.
	pieceSpan := obs.PieceSpanID(act.Inst, act.Piece, act.Compensate)
	parentSpan := obs.RootSpanID(act.Inst)
	if act.Piece != 0 || act.Compensate {
		parentSpan = obs.MailboxSpanID(act.Inst, act.Piece, act.Compensate)
	}
	for {
		s.mu.Lock()
		exec := s.exec
		ctl := s.ctl
		s.mu.Unlock()
		owner := s.cluster.gen.Next()
		s.cluster.recordGroup(owner, act.Inst)
		s.cluster.obs.PieceBegin(int64(owner), int64(act.Inst), act.Piece,
			string(s.ID), prog.Name, class, pieceSpan, parentSpan, "")
		if ctl != nil {
			if err := ctl.Register(owner, dc.Info{
				Class:   class,
				Import:  prog.Spec.Import,
				Export:  prog.Spec.Export,
				Program: prog,
			}); err != nil {
				return pieceDone{}, err
			}
		}
		out, err := exec.Run(ctx, owner, prog)
		var imported, exported metric.Fuzz
		if ctl != nil {
			imported, exported = ctl.Unregister(owner)
		}
		s.cluster.obs.PieceSettle(int64(owner), imported, exported)
		if err == nil {
			s.applied.record(key)
			// Injection point: the piece has committed (marker and all)
			// but nothing has been staged yet — a crash here loses the
			// successor activations and the report, and only the
			// redelivered, dedup'd activation can resurrect them.
			if h := s.cluster.faultHook; h != nil &&
				h.ShouldCrash(fault.PointPreReport, s.ID, act.Inst, act.Piece, act.Compensate) {
				return pieceDone{}, errInjectedCrash
			}
			// Stage successor activations; CommitSend makes them durable
			// and deliverable now that the piece has committed.
			// Compensation pieces have no successors.
			if !act.Compensate {
				s.stageChildren(act, dp)
			}
			return pieceDone{
				Inst:     act.Inst,
				Piece:    act.Piece,
				Comp:     act.Compensate,
				Reads:    out.Reads,
				Imported: imported,
				Exported: exported,
			}, nil
		}
		if !txn.Retryable(err) || ctx.Err() != nil {
			return pieceDone{}, err
		}
	}
}

// startWorkers launches the piece-consuming worker pool (sized by
// WithWorkers) and the settlement report consumer.
func (s *Site) startWorkers() {
	s.mu.Lock()
	s.stopWorkers = make(chan struct{})
	stop := s.stopWorkers
	s.mu.Unlock()
	for i := 0; i < s.workers; i++ {
		s.workerWG.Add(1)
		go s.workerLoop(stop)
	}
	s.workerWG.Add(1)
	go s.doneLoop(stop)
}

// doneLoop consumes settlement reports addressed to this site's
// submissions, draining them in batches (reports arrive both singly and
// as coalesced doneBatch payloads).
func (s *Site) doneLoop(stop <-chan struct{}) {
	defer s.workerWG.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	for {
		batch, err := s.queues.DequeueBatch(ctx, doneQueue, s.actBatch)
		if err != nil {
			return
		}
		for _, d := range batch.Deliveries {
			switch p := d.Msg.Payload.(type) {
			case pieceDone:
				s.recordReportHop(p, d.Msg.ArrivedAt)
				s.cluster.recordDone(p)
			case doneBatch:
				for _, done := range p.Reports {
					s.recordReportHop(done, d.Msg.ArrivedAt)
					s.cluster.recordDone(done)
				}
			}
		}
		batch.Ack()
	}
}

// recordReportHop records the report-wire and ack spans for one
// settlement report arriving over the done queue. Rollback reports
// (RolledAt > 0) key their hop spans on the rolled piece so they never
// collide with piece 0's own report.
func (s *Site) recordReportHop(done pieceDone, arrivedNS int64) {
	piece := done.Piece
	if done.RolledAt > 0 {
		piece = done.RolledAt
	}
	s.cluster.obs.SpanReportHop(done.Inst, piece, done.Comp, done.Ctx, arrivedNS)
}

// stopWorkersAndWait signals the workers and waits for them.
func (s *Site) stopWorkersAndWait() {
	s.mu.Lock()
	if s.stopWorkers != nil {
		select {
		case <-s.stopWorkers:
		default:
			close(s.stopWorkers)
		}
	}
	s.mu.Unlock()
	s.workerWG.Wait()
}

// actStatus is the outcome of processing one activation from a batch.
type actStatus int

const (
	// actDone: the activation's effects and reports are staged; its
	// delivery may be acknowledged.
	actDone actStatus = iota
	// actCrashed: a fault hook fail-stopped the site mid-activation
	// (fault.PointPreReport); nothing after it was staged and no
	// delivery in the batch may be acknowledged.
	actCrashed
	// actFailed: the piece could not run (worker stopped / crash-stop);
	// the activation must be redelivered.
	actFailed
)

// workerLoop consumes piece activations until stopped, draining them in
// batches of up to s.actBatch to amortize wakeups, settlement reports
// (one coalesced done-queue message per origin per batch), and the
// per-consume durable queue snapshot.
func (s *Site) workerLoop(stop <-chan struct{}) {
	defer s.workerWG.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	for {
		batch, err := s.queues.DequeueBatch(ctx, pieceQueue, s.actBatch)
		if err != nil {
			return // stopped
		}
		reports := make(map[simnet.SiteID][]pieceDone)
		processed := 0
		status := actDone
		for _, d := range batch.Deliveries {
			act, ok := d.Msg.Payload.(activation)
			if !ok {
				processed++
				continue
			}
			// Record the hop: wire span (sender commit-send → local
			// admission) and mailbox span (admission → now). No-op when
			// tracing is off or the sender stamped no context.
			s.cluster.obs.SpanActivationHop(act.Inst, act.Piece, act.Compensate,
				d.Msg.Ctx, d.Msg.ArrivedAt)
			if status = s.processActivation(ctx, act, reports); status != actDone {
				break
			}
			processed++
		}
		if status == actCrashed {
			// PointPreReport: the faulted piece committed but nothing was
			// staged for it — and the reports accumulated for earlier
			// activations in this batch die with the site too. Every
			// unacked delivery is redelivered after Recover; the dedup
			// table turns the re-executions into report resends.
			s.crashFromWorker()
			return
		}
		// Stage the settlement reports BEFORE acking the deliveries: a
		// crash between the two redelivers the activations, and dedup
		// turns the re-executions into report resends — at-least-once
		// reports, collapsed at the origin's per-piece tracker.
		s.flushReports(reports)
		for i := 0; i < processed; i++ {
			d := batch.Deliveries[i]
			if act, ok := d.Msg.Payload.(activation); ok && s.preAckCrash(act) {
				// Fail-stop before this ack: everything from here on in the
				// batch (acked or not) is recovered from the durable
				// snapshot; redeliveries dedup.
				return
			}
			d.Ack()
		}
		if status == actFailed {
			// Worker stopped or crash-stop mid-piece: return the
			// unprocessed tail (failed activation included) to the queue
			// front for redelivery after recovery.
			for i := len(batch.Deliveries) - 1; i >= processed; i-- {
				batch.Deliveries[i].Nack()
			}
			s.persistQueues()
			return
		}
		s.persistQueues()
	}
}

// processActivation runs one activation, appending any settlement
// reports it produces to the per-origin accumulator (flushed once per
// batch by flushReports).
func (s *Site) processActivation(ctx context.Context, act activation, reports map[simnet.SiteID][]pieceDone) actStatus {
	s.cluster.dist.mu.Lock()
	dp := s.cluster.dist.programs[act.TxType]
	s.cluster.dist.mu.Unlock()
	// A durably recorded rollback decision from a previous delivery:
	// re-stage the compensations and report without re-running the
	// piece (compensation itself may have flipped its predicate).
	if !act.Compensate && s.Store.Has(rolledMarker(act.Inst, act.Piece)) {
		s.stageRollback(act, dp, reports)
		return actDone
	}
	endAct := s.cluster.obs.ActivationBegin(int64(act.Inst), act.Piece, string(s.ID))
	defer endAct()
	done, err := s.runPiece(ctx, act, dp)
	if err == nil {
		reports[act.Origin] = append(reports[act.Origin], done)
		return actDone
	}
	if errors.Is(err, errInjectedCrash) {
		// PointPreReport: the piece committed but nothing was staged —
		// only the redelivery after Recover resurrects the lost staging.
		return actCrashed
	}
	if errors.Is(err, txn.ErrRollback) && dp.compensable && !act.Compensate {
		// A later piece hit its rollback statement: record the decision
		// durably, then compensate every committed predecessor (the
		// chain guarantees they are exactly pieces 0..Piece-1) and
		// report the rollback.
		_ = s.Store.Apply([]storage.Write{{Key: rolledMarker(act.Inst, act.Piece), Value: 1}})
		s.stageRollback(act, dp, reports)
		return actDone
	}
	return actFailed
}

// rolledMarker is the durable record of a business-rollback decision at
// (inst, piece): written the moment the rollback is first observed, it
// makes redeliveries re-stage compensations instead of re-evaluating a
// predicate that the compensations themselves may since have flipped.
func rolledMarker(inst uint64, piece int) storage.Key {
	return storage.Key(fmt.Sprintf("__rolled/%d/%d", inst, piece))
}

// stageRollback durably stages the compensating activations for the
// committed predecessors of a rolled-back piece, plus the rollback
// report to the origin. Safe to repeat after a redelivery: compensation
// application dedups on (inst, piece, comp) and the tracker collapses
// duplicate reports.
func (s *Site) stageRollback(act activation, dp *distProgram, reports map[simnet.SiteID][]pieceDone) {
	buf := s.queues.Buffer()
	// Compensations and the rollback report hang off the rolled
	// activation's mailbox span — the last span this process recorded
	// for the chain (the rolled piece itself aborted and left none).
	rbCtx := s.cluster.obs.SpanCtx(act.Inst, obs.MailboxSpanID(act.Inst, act.Piece, false))
	for pi := 0; pi < act.Piece; pi++ {
		buf.EnqueueCtx(dp.pieceSite[pi], pieceQueue, activation{
			Inst: act.Inst, Origin: act.Origin, TxType: act.TxType,
			Piece: pi, Compensate: true,
		}, rbCtx)
	}
	if buf.Len() > 0 {
		s.queues.CommitSend(buf)
		s.persistQueues()
	}
	reports[act.Origin] = append(reports[act.Origin], pieceDone{Inst: act.Inst, RolledAt: act.Piece, Ctx: rbCtx})
}

// flushReports stages the settlement reports a worker accumulated while
// draining one batch: local reports fold straight into their trackers;
// remote origins each get ONE done-queue message — a bare pieceDone for
// a single report, a doneBatch for several — so a drained batch costs
// one wire payload per origin instead of one per piece. Reports ride
// the recoverable queue (at-least-once) and the origin's tracker
// collapses duplicates.
func (s *Site) flushReports(reports map[simnet.SiteID][]pieceDone) {
	if len(reports) == 0 {
		return
	}
	buf := s.queues.Buffer()
	for origin, list := range reports {
		if origin == s.ID {
			for _, done := range list {
				s.cluster.recordDone(done)
			}
			continue
		}
		if s.cluster.obs.SpansOn() {
			// Stamp each remote report with its trace context so the
			// origin can record the report-wire hop. Rollback reports
			// were stamped at the decision point (stageRollback).
			for i := range list {
				if list[i].Ctx.Valid() {
					continue
				}
				list[i].Ctx = s.cluster.obs.SpanCtx(list[i].Inst,
					obs.PieceSpanID(list[i].Inst, list[i].Piece, list[i].Comp))
			}
		}
		if len(list) == 1 {
			buf.Enqueue(origin, doneQueue, list[0])
		} else {
			buf.Enqueue(origin, doneQueue, doneBatch{Reports: append([]pieceDone(nil), list...)})
		}
	}
	if buf.Len() > 0 {
		s.queues.CommitSend(buf)
		s.persistQueues()
	}
}

// preAckCrash consults the fault hook at PointPreAck — the piece is
// committed and everything is staged; only the queue ack remains — and
// fail-stops the site when it fires. True means the worker must exit
// without acking, leaving the delivery to be redelivered after Recover.
func (s *Site) preAckCrash(act activation) bool {
	h := s.cluster.faultHook
	if h == nil || !h.ShouldCrash(fault.PointPreAck, s.ID, act.Inst, act.Piece, act.Compensate) {
		return false
	}
	s.crashFromWorker()
	return true
}

// recordDone folds a progress report into its instance tracker.
func (c *Cluster) recordDone(done pieceDone) {
	c.dist.mu.Lock()
	defer c.dist.mu.Unlock()
	tr := c.dist.trackers[done.Inst]
	if tr == nil {
		return // settled after the submitter gave up; nothing to track
	}
	switch {
	case done.RolledAt > 0:
		tr.rolledAt = done.RolledAt
	case done.Comp:
		tr.comps[done.Piece] = true
	default:
		if !tr.pieces[done.Piece] {
			tr.pieces[done.Piece] = true
			tr.reads = append(tr.reads, done.Reads...)
			tr.imported = tr.imported.Add(done.Imported)
		}
	}
	if !tr.completed && tr.settled() {
		tr.completed = true
		close(tr.done)
	}
}

// handleDone routes a piece.done message (called from dispatch).
func (c *Cluster) handleDone(msg simnet.Message) {
	if done, ok := msg.Payload.(pieceDone); ok {
		c.recordDone(done)
	}
}
