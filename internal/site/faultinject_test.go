package site

import (
	"context"
	"strings"
	"testing"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// hookedCompCluster is compCluster plus a fault hook.
func hookedCompCluster(t *testing.T, hook fault.Hook) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Strategy:          ChoppedQueues,
		AllowCompensation: true,
		Seed:              5,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 10000},
			"LA": {"la:Y": 10000, "la:frozen": 0},
		},
		RetransmitEvery: 10 * time.Millisecond,
		FaultHook:       hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitFired polls until the hook's crash has fired.
func waitFired(t *testing.T, hook *fault.CrashOnce, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !hook.Fired() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: fault hook never fired", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCompensationNotDoubledAfterPreAckCrash is the double-compensation
// regression: NY crashes after its compensating piece committed and
// staged everything but BEFORE the queue delivery was acked. The
// redelivered compensation activation must hit the durable `__comp`
// marker and be absorbed, not applied again — ny:X ends at exactly its
// initial value, not over-refunded.
func TestCompensationNotDoubledAfterPreAckCrash(t *testing.T) {
	hook := &fault.CrashOnce{
		Point:      fault.PointPreAck,
		Site:       "NY",
		Piece:      -1,
		Compensate: true,
	}
	c := hookedCompCluster(t, hook)
	if err := c.RegisterPrograms([]*txn.Program{guardedTransfer(200)}); err != nil {
		t.Fatal(err)
	}
	// Freeze LA: the second piece rolls back after NY's debit committed,
	// so NY must run a compensating piece — where the hook strikes.
	c.Site("LA").Store.Set("la:frozen", 1)
	done := make(chan *Result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if res, err := c.Submit(ctx, 0); err == nil {
			done <- res
		}
	}()
	waitFired(t, hook, "pre-ack compensation crash")
	time.Sleep(20 * time.Millisecond)
	c.Site("NY").Recover()
	select {
	case res := <-done:
		if !res.RolledBack {
			t.Fatalf("result = %+v, want compensated rollback", res)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("compensated rollback never settled through the injected crash")
	}
	// Let the redelivered compensation activation drain through the
	// dedup table before checking the books.
	deadline := time.Now().Add(5 * time.Second)
	for hook.Hits() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hook.Hits() < 2 {
		t.Fatal("compensation activation was never redelivered after the crash")
	}
	time.Sleep(50 * time.Millisecond)
	if got := c.Site("NY").Store.Get("ny:X"); got != 10000 {
		t.Errorf("ny:X = %d, want 10000 (compensated exactly once, not doubled)", got)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 10000 {
		t.Errorf("la:Y = %d, want 10000 (credit never applied)", got)
	}
}

// TestPreReportCrashResurrectsLostStaging crashes LA after its middle
// chain piece committed but BEFORE the successor activation and report
// were staged (fault.PointPreReport). Only the redelivered activation —
// absorbed by the dedup table, which then re-stages the children — can
// get the chain to settlement, and it must do so without re-applying
// LA's writes.
func TestPreReportCrashResurrectsLostStaging(t *testing.T) {
	hook := &fault.CrashOnce{
		Point: fault.PointPreReport,
		Site:  "LA",
		Piece: 1,
	}
	c, err := NewCluster(Config{
		Strategy: ChoppedQueues,
		Seed:     3,
		Placement: func(k storage.Key) simnet.SiteID {
			switch {
			case strings.HasPrefix(string(k), "ny:"):
				return "NY"
			case strings.HasPrefix(string(k), "la:"):
				return "LA"
			default:
				return "CHI"
			}
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 10 * time.Millisecond,
		FaultHook:       hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterPrograms([]*txn.Program{chainProgram(100)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if res, err := c.Submit(ctx, 0); err == nil {
			done <- res
		}
	}()
	waitFired(t, hook, "pre-report crash")
	time.Sleep(20 * time.Millisecond)
	c.Site("LA").Recover()
	select {
	case res := <-done:
		if !res.Committed {
			t.Fatalf("result = %+v, want committed", res)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("chain never settled: the lost staging was not resurrected")
	}
	// (The hook is not consulted on the dedup-hit redelivery, so
	// settlement itself is the proof that redelivery happened: the crash
	// destroyed the only other copy of the successor activation.)
	if got := c.Site("NY").Store.Get("ny:A"); got != 9900 {
		t.Errorf("ny:A = %d, want 9900", got)
	}
	if got := c.Site("LA").Store.Get("la:B"); got != 10000 {
		t.Errorf("la:B = %d, want 10000 (pass-through applied exactly once)", got)
	}
	if got := c.Site("CHI").Store.Get("chi:C"); got != 10100 {
		t.Errorf("chi:C = %d, want 10100 (credit applied exactly once)", got)
	}
}
