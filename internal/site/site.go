// Package site simulates multi-site distributed transaction processing:
// each site owns a partition of the keys and runs its own store, lock
// manager, executor, optional divergence controller, recoverable-queue
// endpoint, and 2PC node, all connected by the simulated network.
//
// Two execution strategies implement Section 4's comparison:
//
//   - TwoPhaseCommit: the traditional approach — every distributed
//     transaction runs subtransactions at each site it touches and
//     closes with a blocking two-phase commit (two message rounds on the
//     critical path; a crash between rounds blocks participants).
//   - ChoppedQueues: the paper's approach — transactions are chopped at
//     site boundaries; the first piece commits locally, and sibling
//     pieces are activated through recoverable queues, committing
//     asynchronously with no commit protocol at all. The caller observes
//     two latencies: initiation (first piece committed — the
//     user-visible latency) and settlement (every piece committed).
package site

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/commit"
	"asynctp/internal/dc"
	"asynctp/internal/fault"
	"asynctp/internal/history"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/queue"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/storage/driver"
	"asynctp/internal/txn"
)

// Strategy selects the distributed execution protocol.
type Strategy int

// Strategies.
const (
	// TwoPhaseCommit runs whole distributed transactions under 2PC.
	TwoPhaseCommit Strategy = iota + 1
	// ChoppedQueues chops at site boundaries and activates pieces
	// through recoverable queues.
	ChoppedQueues
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case TwoPhaseCommit:
		return "2pc"
	case ChoppedQueues:
		return "chopped-queues"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Option tunes cluster construction beyond Config — functional options
// for the pipeline knobs that default sensibly and rarely change.
type Option func(*tuning)

// tuning collects the option-settable knobs.
type tuning struct {
	workers    int
	actBatch   int
	queueOpts  []queue.Option
	legacyWire bool
}

// defaultWorkers is the per-site piece-worker pool size (the historical
// hard-coded value, now the WithWorkers default).
const defaultWorkers = 4

// defaultActivationBatch caps how many queued activations one worker
// drains per wakeup (and therefore how many settlement reports coalesce
// into one done-queue message).
const defaultActivationBatch = 32

// WithWorkers sizes each site's piece-worker pool (default 4). One
// worker serializes all piece execution at the site; more workers
// overlap independent pieces at the cost of more lock contention.
func WithWorkers(n int) Option {
	return func(t *tuning) {
		if n > 0 {
			t.workers = n
		}
	}
}

// WithActivationBatch caps the number of activations a worker drains
// per dequeue (default 32); settlement reports for the drained batch
// coalesce into one done-queue message per origin.
func WithActivationBatch(n int) Option {
	return func(t *tuning) {
		if n > 0 {
			t.actBatch = n
		}
	}
}

// WithQueueBatching tunes the recoverable-queue wire batching: maxBatch
// messages per frame (0 keeps the default) and the coalescing window
// flushDelay (<= 0 flushes synchronously on every commit).
func WithQueueBatching(maxBatch int, flushDelay time.Duration) Option {
	return func(t *tuning) {
		if maxBatch > 0 {
			t.queueOpts = append(t.queueOpts, queue.WithMaxBatch(maxBatch))
		}
		t.queueOpts = append(t.queueOpts, queue.WithFlushDelay(flushDelay))
	}
}

// WithLegacyWire restores the pre-batching pipeline end to end: one
// network frame per queue message, one ack per frame, full-outbox
// retransmission every tick, per-activation dequeue, and one settlement
// report message per piece. It exists as the measured A/B baseline for
// cmd/distbench.
func WithLegacyWire() Option {
	return func(t *tuning) {
		t.legacyWire = true
		t.actBatch = 1
		t.queueOpts = append(t.queueOpts, queue.WithLegacyWire())
	}
}

// Site is one simulated site.
type Site struct {
	ID    simnet.SiteID
	Store *storage.Store

	cluster     *Cluster
	opDelay     time.Duration
	lockTimeout time.Duration
	workers     int
	actBatch    int
	mu          sync.Mutex
	locks       *lock.Manager
	exec        *txn.Exec
	ctl         *dc.Controller
	queues      *queue.Manager
	node        *commit.Node
	// prepared holds participant-side 2PC subtransactions awaiting the
	// decision: owner + undo images.
	prepared map[string]*preparedTxn
	// applied dedups piece applications on (inst, pieceIdx): redelivered
	// activations (at-least-once queues) must not double-apply.
	applied *dedupTable
	// crashed marks the site down; workers idle and messages drop.
	crashed bool
	// backend is the site's storage driver instance: the store it owns,
	// the durable queue image, and the recovery path. The mem driver
	// simulates durability; the disk driver earns it with a WAL.
	backend driver.Backend
	// recoverErr records a failed backend recovery; the site stays
	// crashed when it is set.
	recoverErr error

	stopWorkers chan struct{}
	workerWG    sync.WaitGroup
}

// preparedTxn is a participant-side subtransaction holding locks.
type preparedTxn struct {
	owner lock.Owner
	undo  map[storage.Key]metric.Value
	batch []storage.Write
}

// Config configures a cluster.
type Config struct {
	// Strategy selects 2PC vs chopped queues.
	Strategy Strategy
	// UseDC runs each site's lock manager under divergence control.
	UseDC bool
	// Placement maps each key to its owning site. It may name sites that
	// are not in Initial: those are remote peers (other OS processes)
	// reached through cfg.Net — activations and settlement reports ride
	// the recoverable queues to them exactly as to local sites.
	Placement func(storage.Key) simnet.SiteID
	// Initial seeds each LOCAL site's store; only these sites get
	// stores, workers, and inboxes in this process.
	Initial map[simnet.SiteID]map[storage.Key]metric.Value
	// Net supplies the wire. Nil builds the in-process simulated network
	// from Latency/Jitter/LossRate/Seed below. A transport.Net takes the
	// identical pipeline onto real TCP sockets (loopback or cross-
	// process); the two are conformance-tested twins.
	Net simnet.Net
	// Latency and Jitter configure the network (one-way).
	Latency time.Duration
	Jitter  float64
	// LossRate silently drops this fraction of in-flight messages; the
	// recoverable queues must still deliver exactly once.
	LossRate float64
	// Seed makes jitter reproducible.
	Seed int64
	// RetransmitEvery tunes the recoverable-queue retransmitter.
	RetransmitEvery time.Duration
	// OpDelay simulates per-operation work at each site (see
	// txn.Exec.SetOpDelay).
	OpDelay time.Duration
	// Record attaches a cluster-wide history recorder so distributed
	// executions can be checked for (grouped) serializability.
	Record bool
	// AllowCompensation permits chopped programs whose rollback
	// statements live beyond the first piece (not rollback-safe): a
	// later piece's business rollback triggers compensating inverse
	// pieces for its committed predecessors — the optimistic-commit
	// pattern of the paper's related work [7]. Requires every write in
	// such programs to be a commutative delta (invertible).
	AllowCompensation bool
	// LockTimeout bounds a 2PC participant's lock wait during prepare.
	// Distributed deadlocks are invisible to per-site detectors, so the
	// timeout (default 500ms) converts them into system NO votes that
	// the coordinator retries. Defaults are fine for tests; tune down
	// for high-contention benchmarks.
	LockTimeout time.Duration
	// CommitTimeouts enables bounded-wait 2PC (presumed abort on vote
	// timeout, participant stale-decision queries). The zero value keeps
	// the legacy unbounded-blocking coordinator.
	CommitTimeouts commit.Timeouts
	// FaultHook, when set, is consulted at the pipeline's injection
	// points (see fault.Point); a true answer fail-stops the site right
	// there — e.g. between a piece's commit and its queue ack.
	FaultHook fault.Hook
	// Storage selects the storage driver (nil means the in-memory "mem"
	// driver — the simulated-durability default). A disk driver makes
	// every site's committed state real files: a WAL with group-commit
	// fsync plus snapshots, surviving even kill -9.
	Storage driver.Driver
	// InstanceBase offsets the cluster's instance-ID sequence. A process
	// restarting against an existing disk image must pick a base above
	// every instance the previous incarnation could have minted, so new
	// submissions never collide with recovered piece markers.
	InstanceBase uint64
	// Obs, when non-nil, attaches the observability plane: every site's
	// executor, lock manager, divergence controller, queue endpoint, and
	// 2PC node report spans/ledger pages/metrics through it. Nil keeps
	// all the nil-observer fast paths.
	Obs *obs.Plane
}

// Cluster is a set of sites plus the network.
type Cluster struct {
	Net      simnet.Net
	Strategy Strategy
	UseDC    bool

	placement  func(storage.Key) simnet.SiteID
	compensate bool
	faultHook  fault.Hook
	obs        *obs.Plane
	sites      map[simnet.SiteID]*Site
	dist       *distState
	rec        *history.Recorder
	groupMu    sync.Mutex
	groupOf    map[lock.Owner]history.Group
	gen        txn.IDGen
	nextInst   sync.Mutex
	instSeq    uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config, opts ...Option) (*Cluster, error) {
	tune := tuning{workers: defaultWorkers, actBatch: defaultActivationBatch}
	for _, opt := range opts {
		opt(&tune)
	}
	if cfg.Placement == nil {
		return nil, errors.New("site: config needs a placement function")
	}
	if len(cfg.Initial) == 0 {
		return nil, errors.New("site: config needs at least one site")
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = TwoPhaseCommit
	}
	netw := cfg.Net
	if netw == nil {
		netOpts := []simnet.Option{simnet.WithLatency(cfg.Latency), simnet.WithJitter(cfg.Jitter)}
		if cfg.Seed != 0 {
			netOpts = append(netOpts, simnet.WithSeed(cfg.Seed))
		}
		if cfg.LossRate > 0 {
			netOpts = append(netOpts, simnet.WithLossRate(cfg.LossRate))
		}
		netw = simnet.New(netOpts...)
	} else if cfg.Strategy == TwoPhaseCommit {
		if _, sim := netw.(*simnet.Network); !sim {
			// 2PC prepare payloads carry txn.Op closures, which no byte
			// codec can frame; the strategy exists for the in-process A/B
			// comparison and stays on the simulated wire.
			return nil, errors.New("site: the 2PC strategy requires the in-process simnet (its payloads are not wire-serializable)")
		}
	}
	c := &Cluster{
		Net:        netw,
		Strategy:   cfg.Strategy,
		UseDC:      cfg.UseDC,
		placement:  cfg.Placement,
		compensate: cfg.AllowCompensation,
		faultHook:  cfg.FaultHook,
		obs:        cfg.Obs,
		sites:      make(map[simnet.SiteID]*Site, len(cfg.Initial)),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.dist = &distState{trackers: make(map[uint64]*tracker)}
	c.groupOf = make(map[lock.Owner]history.Group)
	c.instSeq = cfg.InstanceBase
	if cfg.Record {
		c.rec = history.NewRecorder()
	}
	drv := cfg.Storage
	if drv == nil {
		var err error
		if drv, err = driver.New("mem", driver.Params{}); err != nil {
			return nil, err
		}
	}
	for id, init := range cfg.Initial {
		lockTimeout := cfg.LockTimeout
		if lockTimeout <= 0 {
			lockTimeout = 500 * time.Millisecond
		}
		be, err := drv.Open(string(id), init)
		if err != nil {
			return nil, fmt.Errorf("site: opening %s backend for %s: %w", drv.Name(), id, err)
		}
		s := &Site{
			ID:          id,
			Store:       be.Store(),
			backend:     be,
			cluster:     c,
			opDelay:     cfg.OpDelay,
			lockTimeout: lockTimeout,
			workers:     tune.workers,
			actBatch:    tune.actBatch,
			prepared:    make(map[string]*preparedTxn),
		}
		var lockOpts []lock.Option
		if wo := cfg.Obs.WaitObserver(); wo != nil {
			lockOpts = append(lockOpts, lock.WithWaitObserver(wo))
		}
		if cfg.UseDC {
			s.ctl = dc.NewController()
			s.locks = lock.NewManager(append(lockOpts, lock.WithArbiter(s.ctl))...)
			if dcObs := cfg.Obs.DCObserver(); dcObs != nil {
				s.ctl.SetObserver(dcObs)
			}
		} else {
			s.locks = lock.NewManager(lockOpts...)
		}
		var recObs txn.Observer
		if c.rec != nil {
			recObs = c.rec
		}
		s.exec = txn.NewExec(s.Store, s.locks, obs.TeeTxnObserver(recObs, cfg.Obs.ExecObserver()))
		s.exec.SetOpDelay(cfg.OpDelay)
		qOpts := append([]queue.Option(nil), tune.queueOpts...)
		if cfg.FaultHook != nil {
			// Wire the queue layer's batch-flush crash point: when the
			// hook fires, the flush is dropped (its messages stay durable
			// in the outbox) and the site fail-stops right there.
			hook := cfg.FaultHook
			sRef := s
			qOpts = append(qOpts, queue.WithFlushCrash(func() bool {
				if !hook.ShouldCrash(fault.PointPreBatchFlush, sRef.ID, 0, -1, false) {
					return false
				}
				sRef.crashFromWorker()
				return true
			}))
		}
		if qObs := cfg.Obs.QueueObserver(id); qObs != nil {
			qOpts = append(qOpts, queue.WithObserver(qObs))
		}
		// Persist-before-ack: the endpoint's durable image is written (and,
		// under the disk driver, fsynced) before any received frame is
		// acknowledged, so an acked message is never lost to kill -9.
		qOpts = append(qOpts, queue.WithPersist(be.SaveQueues))
		s.queues = queue.NewManager(id, c.Net, cfg.RetransmitEvery, qOpts...)
		// A disk backend opened over an existing image (a process restart
		// after a crash) carries the last fsynced queue state: restore it
		// so unacked outbox messages retransmit and dedup watermarks
		// survive the restart. Fresh backends report no image.
		if qs, ok, qerr := be.LoadQueues(); qerr == nil && ok {
			s.queues.Restore(qs)
		}
		cfg.Obs.WatchQueue(string(id), s.queues)
		s.applied = newDedupTable(s.Store)
		var nodeOpts []commit.Option
		if cfg.CommitTimeouts.VoteWait > 0 {
			nodeOpts = append(nodeOpts, commit.WithTimeouts(cfg.CommitTimeouts))
		}
		if cObs := cfg.Obs.CommitObserver(id); cObs != nil {
			nodeOpts = append(nodeOpts, commit.WithObserver(cObs))
		}
		s.node = commit.NewNode(id, c.Net, commit.Hooks{
			Prepare: s.prepare2PC,
			Commit:  s.commit2PC,
			Abort:   s.abort2PC,
		}, nodeOpts...)
		c.sites[id] = s
	}
	// Start dispatchers and piece workers after all sites exist.
	for _, s := range c.sites {
		inbox, err := c.Net.AddSite(s.ID)
		if err != nil {
			return nil, err
		}
		c.wg.Add(1)
		go c.dispatch(s, inbox)
		s.startWorkers()
	}
	return c, nil
}

// Close stops the cluster and waits for its goroutines.
func (c *Cluster) Close() {
	c.cancel()
	for _, s := range c.sites {
		s.stopWorkersAndWait()
		s.queues.Close()
		_ = s.backend.Close()
	}
	c.wg.Wait()
	c.Net.Close()
}

// Site returns the site with the given ID, or nil.
func (c *Cluster) Site(id simnet.SiteID) *Site { return c.sites[id] }

// dispatch routes a site's inbox messages.
func (c *Cluster) dispatch(s *Site, inbox <-chan simnet.Message) {
	defer c.wg.Done()
	for {
		select {
		case msg := <-inbox:
			if s.isCrashed() {
				continue // a crashed site processes nothing
			}
			switch {
			case queue.IsQueueKind(msg.Kind):
				// Enqueue frames persist the durable queue image inside
				// Handle (WithPersist), before their acks are staged.
				s.queues.Handle(msg)
			case msg.Kind == KindPieceDone:
				c.handleDone(msg)
			default:
				// 2PC prepares may block on locks (up to the lock
				// timeout); handle them off the dispatch loop so
				// decisions and other traffic keep flowing.
				c.wg.Add(1)
				go func(msg simnet.Message) {
					defer c.wg.Done()
					s.node.Handle(c.ctx, msg)
				}(msg)
			}
		case <-c.ctx.Done():
			return
		}
	}
}

// isCrashed reports the crash flag.
func (s *Site) isCrashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// persistQueues refreshes the durable queue image. Errors are not fatal
// here: the image on disk stays one frame stale, senders retransmit the
// unacked messages, and the watermark dedup absorbs the redelivery —
// the same at-least-once argument that covers a crash at this point.
func (s *Site) persistQueues() {
	_ = s.backend.SaveQueues(s.queues.Snapshot())
}

// Crash simulates a site failure: volatile state (locks, in-flight
// transactions, dirty store cells) is lost; the journaled store and the
// persisted queue image survive.
func (s *Site) Crash() {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	s.mu.Unlock()
	s.cluster.Net.SetDown(s.ID, true)
	s.stopWorkersAndWait()
}

// crashFromWorker fail-stops the site from inside one of its own worker
// goroutines (fault-hook injection points fire there). It cannot call
// Crash, which waits on the worker WaitGroup that includes the caller;
// instead it marks the site crashed, signals the remaining workers, and
// drops the site off the network. Recover waits out the stragglers
// before rebuilding.
func (s *Site) crashFromWorker() {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	if s.stopWorkers != nil {
		select {
		case <-s.stopWorkers:
		default:
			close(s.stopWorkers)
		}
	}
	s.mu.Unlock()
	s.cluster.Net.SetDown(s.ID, true)
}

// Recover restarts a crashed site from durable state.
func (s *Site) Recover() {
	s.mu.Lock()
	if !s.crashed {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	// A fault-injected crash (crashFromWorker) signals the workers but
	// cannot wait for them; do so now, before rebuilding volatile state
	// under their feet.
	s.stopWorkersAndWait()
	s.mu.Lock()
	if !s.crashed { // lost a race with a concurrent Recover
		s.mu.Unlock()
		return
	}
	// Durable store: the backend rebuilds it from its durable image —
	// the mem driver replays the simulated journal, the disk driver
	// loads the snapshot and replays the WAL (truncating torn tails),
	// exactly as a process restart would. Dirty cells vanish either way.
	st, err := s.backend.Recover()
	if err != nil {
		// The durable image is unreadable; leave the site down rather
		// than resurrect it with fabricated state.
		s.recoverErr = err
		s.mu.Unlock()
		return
	}
	s.Store = st
	s.recoverErr = nil
	// The piece-dedup cache is volatile; wipe it. Durable `__applied` /
	// `__comp` markers in the recovered journal keep answering lookups,
	// so redelivered activations stay exactly-once.
	s.applied.reset(s.Store)
	// Volatile state: fresh locks (and DC accounts), no prepared txns.
	var lockOpts []lock.Option
	if wo := s.cluster.obs.WaitObserver(); wo != nil {
		lockOpts = append(lockOpts, lock.WithWaitObserver(wo))
	}
	if s.ctl != nil {
		s.ctl = dc.NewController()
		s.locks = lock.NewManager(append(lockOpts, lock.WithArbiter(s.ctl))...)
		if dcObs := s.cluster.obs.DCObserver(); dcObs != nil {
			s.ctl.SetObserver(dcObs)
		}
	} else {
		s.locks = lock.NewManager(lockOpts...)
	}
	var recObs txn.Observer
	if s.cluster.rec != nil {
		recObs = s.cluster.rec
	}
	s.exec = txn.NewExec(s.Store, s.locks, obs.TeeTxnObserver(recObs, s.cluster.obs.ExecObserver()))
	s.exec.SetOpDelay(s.opDelay)
	s.prepared = make(map[string]*preparedTxn)
	s.crashed = false
	s.mu.Unlock()

	// The durable queue image recovered alongside the store: under the
	// disk driver this is the last fsynced aux record, which — by the
	// persist-before-ack barrier — covers every message this site ever
	// acknowledged.
	queueSnap, _, qerr := s.backend.LoadQueues()
	if qerr == nil {
		s.queues.Restore(queueSnap)
	}
	s.cluster.Net.SetDown(s.ID, false)
	s.startWorkers()
	// Re-stage the successors of locally committed origin pieces: piece 0
	// never rides a queue, so a crash between its commit and its staging
	// has no redelivery to resurrect the children — the durable marker is
	// the only witness. Duplicates collapse downstream.
	s.restageOrigins()
}

// RecoverError reports why the last Recover left the site down (nil
// after a successful recovery).
func (s *Site) RecoverError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoverErr
}

// Backend exposes the site's storage backend (checkpointing, tests).
func (s *Site) Backend() driver.Backend { return s.backend }

// QueuesIdle reports whether the site's queue endpoint is fully
// drained: nothing deliverable, nothing delivered-but-unacked, and
// nothing committed-but-unacknowledged in the outbox. Quiescence
// polling uses it to decide a workload has settled.
func (s *Site) QueuesIdle() bool {
	return s.queues.OutboxLen() == 0 &&
		s.queues.InflightLen() == 0 &&
		s.queues.Depth(pieceQueue) == 0 &&
		s.queues.Depth(doneQueue) == 0
}

// Exec returns the site's executor (fresh after recovery).
func (s *Site) Exec() *txn.Exec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec
}

// Locks returns the site's lock manager (fresh after recovery).
func (s *Site) Locks() *lock.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.locks
}

// Controller returns the site's divergence controller (nil without DC).
func (s *Site) Controller() *dc.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl
}

// PreparedCount exposes the 2PC blocked-window size.
func (s *Site) PreparedCount() int { return s.node.PreparedCount() }

// Recorder returns the cluster history recorder (nil unless Record).
func (c *Cluster) Recorder() *history.Recorder { return c.rec }

// GroupOf returns the owner → distributed-transaction grouping for
// grouped serializability checks.
func (c *Cluster) GroupOf() map[lock.Owner]history.Group {
	c.groupMu.Lock()
	defer c.groupMu.Unlock()
	out := make(map[lock.Owner]history.Group, len(c.groupOf))
	for k, v := range c.groupOf {
		out[k] = v
	}
	return out
}

// recordGroup associates an owner with a distributed transaction.
func (c *Cluster) recordGroup(owner lock.Owner, inst uint64) {
	c.groupMu.Lock()
	defer c.groupMu.Unlock()
	c.groupOf[owner] = history.Group(inst)
}

// ---------------------------------------------------------------------
// fault.Injector — a fault.Schedule drives the cluster through these.
// ---------------------------------------------------------------------

// CrashSite fail-stops the site (fault.Injector).
func (c *Cluster) CrashSite(id simnet.SiteID) {
	if s := c.sites[id]; s != nil {
		s.Crash()
	}
}

// RestartSite recovers the site from durable state (fault.Injector).
func (c *Cluster) RestartSite(id simnet.SiteID) {
	if s := c.sites[id]; s != nil {
		s.Recover()
	}
}

// SetPartitioned cuts or heals a link (fault.Injector).
func (c *Cluster) SetPartitioned(a, b simnet.SiteID, cut bool) {
	c.Net.SetPartitioned(a, b, cut)
}

// SetLossRate sets the silent message-loss fraction (fault.Injector).
func (c *Cluster) SetLossRate(rate float64) { c.Net.SetLossRate(rate) }

// SetLatency sets the base one-way latency and jitter (fault.Injector).
func (c *Cluster) SetLatency(base time.Duration, jitter float64) {
	c.Net.SetLatency(base, jitter)
}

// compile-time check: *Cluster satisfies fault.Injector.
var _ fault.Injector = (*Cluster)(nil)
