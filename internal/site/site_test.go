package site

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// twoBranches builds the paper's Section 4 scenario: account X at the NY
// branch, account Y at the LA branch.
func twoBranches(t *testing.T, strategy Strategy, useDC bool, latency time.Duration) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Strategy: strategy,
		UseDC:    useDC,
		Latency:  latency,
		Seed:     42,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 100000},
			"LA": {"la:Y": 100000},
		},
		RetransmitEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// bankPrograms returns (transfer NY→LA, audit over both branches).
func bankPrograms(amount metric.Value, spec metric.Spec) []*txn.Program {
	xfer := txn.MustProgram("xfer",
		txn.AddOp("ny:X", -amount), txn.AddOp("la:Y", amount),
	).WithSpec(spec)
	audit := txn.MustProgram("audit",
		txn.ReadOp("ny:X"), txn.ReadOp("la:Y"),
	).WithSpec(spec)
	return []*txn.Program{xfer, audit}
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func totals(c *Cluster) metric.Value {
	return c.Site("NY").Store.Get("ny:X") + c.Site("LA").Store.Get("la:Y")
}

func TestTwoPCTransferCommits(t *testing.T) {
	c := twoBranches(t, TwoPhaseCommit, false, 0)
	if err := c.RegisterPrograms(bankPrograms(5000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctxT(t, 10*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 95000 {
		t.Errorf("ny:X = %d, want 95000", got)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 105000 {
		t.Errorf("la:Y = %d, want 105000", got)
	}
	// 2PC over two participants: prepare+vote+decision+ack each = 8
	// one-way messages.
	if sent := c.Net.Stats().Sent; sent < 8 {
		t.Errorf("messages sent = %d, want >= 8", sent)
	}
}

func TestTwoPCAuditReadsBothBranches(t *testing.T) {
	c := twoBranches(t, TwoPhaseCommit, false, 0)
	if err := c.RegisterPrograms(bankPrograms(5000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctxT(t, 10*time.Second), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.SumReads() != 200000 {
		t.Errorf("audit result = %+v sum = %d", res, res.SumReads())
	}
}

func TestTwoPCRollbackVote(t *testing.T) {
	c := twoBranches(t, TwoPhaseCommit, false, 0)
	withdraw := txn.MustProgram("overdraw",
		txn.WithAbortIf(txn.AddOp("ny:X", -999999999), func(v metric.Value) bool { return v < 999999999 }),
		txn.AddOp("la:Y", 999999999),
	)
	if err := c.RegisterPrograms([]*txn.Program{withdraw}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctxT(t, 10*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack || res.Committed {
		t.Fatalf("result = %+v, want rolled back", res)
	}
	if got := totals(c); got != 200000 {
		t.Errorf("total = %d after rollback, want 200000", got)
	}
}

func TestChoppedTransferSettles(t *testing.T) {
	c := twoBranches(t, ChoppedQueues, false, 0)
	if err := c.RegisterPrograms(bankPrograms(5000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctxT(t, 10*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Site("NY").Store.Get("ny:X"); got != 95000 {
		t.Errorf("ny:X = %d, want 95000", got)
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 105000 {
		t.Errorf("la:Y = %d, want 105000", got)
	}
}

func TestChoppedRollbackInFirstPiece(t *testing.T) {
	c := twoBranches(t, ChoppedQueues, false, 0)
	withdraw := txn.MustProgram("overdraw",
		txn.WithAbortIf(txn.AddOp("ny:X", -999999999), func(v metric.Value) bool { return v < 999999999 }),
		txn.AddOp("la:Y", 999999999),
	)
	if err := c.RegisterPrograms([]*txn.Program{withdraw}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctxT(t, 10*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack {
		t.Fatalf("result = %+v, want rolled back", res)
	}
	time.Sleep(100 * time.Millisecond) // no stray piece may run later
	if got := totals(c); got != 200000 {
		t.Errorf("total = %d after rollback, want 200000", got)
	}
}

func TestLatencyAdvantageOfChopping(t *testing.T) {
	// With 30ms one-way latency: 2PC needs 4 sequential one-way hops
	// (>=120ms); the chopped transfer initiates locally (~0ms).
	const oneWay = 30 * time.Millisecond
	ctx := ctxT(t, 20*time.Second)

	c2pc := twoBranches(t, TwoPhaseCommit, false, oneWay)
	if err := c2pc.RegisterPrograms(bankPrograms(1000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	res2pc, err := c2pc.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	cch := twoBranches(t, ChoppedQueues, false, oneWay)
	if err := cch.RegisterPrograms(bankPrograms(1000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	resch, err := cch.Submit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	if res2pc.Initiation < 4*oneWay {
		t.Errorf("2PC initiation %v, want >= %v (two rounds)", res2pc.Initiation, 4*oneWay)
	}
	if resch.Initiation > 2*oneWay {
		t.Errorf("chopped initiation %v, want local (< %v)", resch.Initiation, 2*oneWay)
	}
	if resch.Initiation >= res2pc.Initiation {
		t.Errorf("chopping gained nothing: %v vs %v", resch.Initiation, res2pc.Initiation)
	}
	// Settlement still needs the one-way activation hop.
	if resch.Settlement < oneWay {
		t.Errorf("chopped settlement %v, want >= %v", resch.Settlement, oneWay)
	}
}

func TestAvailabilityUnderSiteCrash(t *testing.T) {
	// E2's availability claim: with LA crashed, 2PC cannot finish a
	// transfer at all, while the chopped transfer initiates immediately
	// and settles once LA recovers.
	c2pc := twoBranches(t, TwoPhaseCommit, false, 0)
	if err := c2pc.RegisterPrograms(bankPrograms(1000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	c2pc.Site("LA").Crash()
	blockCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c2pc.Submit(blockCtx, 0); err == nil {
		t.Error("2PC committed with a crashed participant")
	}

	cch := twoBranches(t, ChoppedQueues, false, 0)
	if err := cch.RegisterPrograms(bankPrograms(1000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	cch.Site("LA").Crash()
	done := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := cch.Submit(ctxT(t, 20*time.Second), 0)
		if err != nil {
			errCh <- err
			return
		}
		done <- res
	}()
	// The NY debit must land promptly even with LA down.
	deadline := time.Now().Add(2 * time.Second)
	for cch.Site("NY").Store.Get("ny:X") != 99000 {
		if time.Now().After(deadline) {
			t.Fatal("first piece did not commit while LA down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := cch.Site("LA").Store.Get("la:Y"); got != 100000 {
		t.Fatalf("la:Y changed while crashed: %d", got)
	}
	// Recovery lets the second piece settle.
	cch.Site("LA").Recover()
	select {
	case res := <-done:
		if !res.Committed {
			t.Errorf("result = %+v", res)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(15 * time.Second):
		t.Fatal("settlement never completed after recovery")
	}
	if got := cch.Site("LA").Store.Get("la:Y"); got != 101000 {
		t.Errorf("la:Y = %d after settlement, want 101000", got)
	}
}

func TestCrashRedeliveryDoesNotDoubleApply(t *testing.T) {
	// Crash LA right after the activation is durable but before (or
	// while) the piece runs; recovery must apply the credit exactly
	// once despite redelivery.
	c := twoBranches(t, ChoppedQueues, false, 0)
	if err := c.RegisterPrograms(bankPrograms(1000, metric.Strict)); err != nil {
		t.Fatal(err)
	}
	res := make(chan *Result, 1)
	go func() {
		r, err := c.Submit(ctxT(t, 20*time.Second), 0)
		if err == nil {
			res <- r
		}
	}()
	// Crash/recover LA a few times while the transfer settles.
	for i := 0; i < 3; i++ {
		time.Sleep(15 * time.Millisecond)
		c.Site("LA").Crash()
		time.Sleep(15 * time.Millisecond)
		c.Site("LA").Recover()
	}
	select {
	case <-res:
	case <-time.After(15 * time.Second):
		t.Fatal("transfer never settled through crashes")
	}
	if got := c.Site("LA").Store.Get("la:Y"); got != 101000 {
		t.Errorf("la:Y = %d, want exactly 101000 (no double apply)", got)
	}
	if got := totals(c); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
}

func TestDistributedEpsilonSplit(t *testing.T) {
	// E3 (Section 4.1): transfer export ε = $10,000 split $5,000 per
	// branch piece; audit import ε likewise. Transfers of $4,000 (<
	// $5,000 per-piece budget) proceed through conflicts via local
	// divergence control.
	c := twoBranches(t, ChoppedQueues, true, 0)
	spec := metric.Spec{Import: metric.LimitOf(1000000), Export: metric.LimitOf(1000000)}
	if err := c.RegisterPrograms(bankPrograms(4000, spec)); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 30*time.Second)
	var wg sync.WaitGroup
	const xfers, audits = 8, 4
	sums := make(chan metric.Value, audits)
	errCh := make(chan error, xfers+audits)
	for i := 0; i < xfers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Submit(ctx, 0); err != nil {
				errCh <- err
			}
		}()
	}
	for i := 0; i < audits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Submit(ctx, 1)
			if err != nil {
				errCh <- err
				return
			}
			sums <- res.SumReads()
		}()
	}
	wg.Wait()
	close(errCh)
	close(sums)
	for err := range errCh {
		t.Fatal(err)
	}
	// Money conserved after settlement.
	if got := totals(c); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
	// Audit deviations bounded by money in flight: at most all transfers
	// concurrently mid-flight.
	for sum := range sums {
		if dev := metric.Distance(sum, 200000); dev > xfers*4000 {
			t.Errorf("audit deviation %d exceeds in-flight bound %d", dev, xfers*4000)
		}
	}
}

func TestRegisterProgramsValidation(t *testing.T) {
	c := twoBranches(t, ChoppedQueues, false, 0)
	// Rollback in the second (cross-site) op breaks rollback-safety.
	bad := txn.MustProgram("bad",
		txn.AddOp("ny:X", -1),
		txn.WithAbortIf(txn.AddOp("la:Y", 1), func(metric.Value) bool { return false }),
	)
	if err := c.RegisterPrograms([]*txn.Program{bad}); err == nil {
		t.Error("rollback-unsafe cross-site program accepted")
	}
	if _, err := c.Submit(context.Background(), 99); err == nil {
		t.Error("unknown program index accepted")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewCluster(Config{
		Placement: func(storage.Key) simnet.SiteID { return "a" },
	}); err == nil {
		t.Error("config without sites accepted")
	}
}

func TestTwoPCWithDistributedDC(t *testing.T) {
	// Category-1 distributed divergence control (paper §4.1): each
	// subtransaction runs under its site's local DC with an even share
	// of the transaction's ε-spec; local fuzziness sums at the
	// coordinator. A query may read through a prepared update's locks
	// when the shares afford it.
	c := twoBranches(t, TwoPhaseCommit, true, 0)
	spec := metric.Spec{Import: metric.LimitOf(10000), Export: metric.LimitOf(10000)}
	if err := c.RegisterPrograms(bankPrograms(1000, spec)); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 20*time.Second)
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Submit(ctx, 0); err != nil {
				errCh <- err
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Submit(ctx, 1)
			if err != nil {
				errCh <- err
				return
			}
			if !res.Committed {
				errCh <- fmt.Errorf("audit did not commit: %+v", res)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := totals(c); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
}
