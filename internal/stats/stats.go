// Package stats provides the small measurement toolkit used by the
// benchmark harness: latency recorders with percentiles, counters, and a
// fixed-width table writer for printing paper-style result tables.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoir is the sample cap beyond which a Recorder switches
// from exact percentiles to a seeded bounded reservoir (algorithm R).
// Below the cap every sample is kept, so small-N tests see exact
// nearest-rank percentiles; above it memory stays O(cap) no matter how
// long the run is.
const DefaultReservoir = 8192

// Recorder accumulates duration samples.
//
// Aggregates (count, mean, min, max) are exact over every sample ever
// added. Percentiles are exact while at most the reservoir cap of
// samples have been added, and computed over a uniform seeded reservoir
// beyond that. The sorted view backing Percentile is cached and
// invalidated on Add, so a burst of Percentile calls sorts once instead
// of copying and sorting the whole sample set per call.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration // exact set (count <= cap) or reservoir
	sorted  []time.Duration // cached sorted view of samples
	dirty   bool            // sorted is stale
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	cap     int
	rng     *rand.Rand
}

// NewRecorder returns an empty recorder with the default reservoir cap.
func NewRecorder() *Recorder {
	return NewReservoirRecorder(DefaultReservoir, 1)
}

// NewReservoirRecorder returns an empty recorder that keeps at most cap
// samples for percentile estimation (cap < 1 selects DefaultReservoir).
// The reservoir's replacement choices are driven by seed, so the same
// sample stream always yields the same percentiles.
func NewReservoirRecorder(cap int, seed int64) *Recorder {
	if cap < 1 {
		cap = DefaultReservoir
	}
	return &Recorder{cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += d
	if r.count == 1 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		r.dirty = true
		return
	}
	// Reservoir sampling (algorithm R): the i-th sample replaces a
	// random slot with probability cap/i, keeping the kept set uniform.
	if j := r.rng.Int63n(r.count); j < int64(r.cap) {
		r.samples[j] = d
		r.dirty = true
	}
}

// Reset clears the recorder back to empty, keeping its cap and RNG
// state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = r.samples[:0]
	r.sorted = r.sorted[:0]
	r.dirty = false
	r.count, r.sum, r.min, r.max = 0, 0, 0, 0
}

// N returns the number of samples added (exact, not the reservoir size).
func (r *Recorder) N() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Mean returns the mean over all samples, 0 when empty.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// sortedLocked returns the cached sorted view, rebuilding it if stale.
// Callers hold r.mu.
func (r *Recorder) sortedLocked() []time.Duration {
	if r.dirty || len(r.sorted) != len(r.samples) {
		r.sorted = append(r.sorted[:0], r.samples...)
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
		r.dirty = false
	}
	return r.sorted
}

// Percentile returns the q-th percentile (0 < q <= 100) by
// nearest-rank, 0 when empty. Exact while the sample count is within
// the reservoir cap; a reservoir estimate beyond it.
func (r *Recorder) Percentile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	sorted := r.sortedLocked()
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Max returns the largest sample ever added, 0 when empty.
func (r *Recorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Min returns the smallest sample ever added, 0 when empty.
func (r *Recorder) Min() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.min
}

// Counter is a concurrent counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Table renders fixed-width result tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns the column headers.
func (t *Table) Header() []string {
	return append([]string(nil), t.header...)
}

// Rows returns a copy of the table rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
