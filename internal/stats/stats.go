// Package stats provides the small measurement toolkit used by the
// benchmark harness: latency recorders with percentiles, counters, and a
// fixed-width table writer for printing paper-style result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates duration samples.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
}

// N returns the number of samples.
func (r *Recorder) N() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the mean sample, 0 when empty.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range r.samples {
		total += s
	}
	return total / time.Duration(len(r.samples))
}

// Percentile returns the q-th percentile (0 < q <= 100) by
// nearest-rank, 0 when empty.
func (r *Recorder) Percentile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Max returns the largest sample, 0 when empty.
func (r *Recorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max time.Duration
	for _, s := range r.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Min returns the smallest sample, 0 when empty.
func (r *Recorder) Min() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	min := r.samples[0]
	for _, s := range r.samples[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// Counter is a concurrent counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Table renders fixed-width result tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns the column headers.
func (t *Table) Header() []string {
	return append([]string(nil), t.header...)
}

// Rows returns a copy of the table rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
