package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.N() != 0 || r.Mean() != 0 || r.Percentile(50) != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Error("empty recorder not all zeros")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		r.Add(d * time.Millisecond)
	}
	if r.N() != 5 {
		t.Errorf("N = %d", r.N())
	}
	if got := r.Mean(); got != 30*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := r.Min(); got != 10*time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := r.Max(); got != 50*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i))
	}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, tt := range tests {
		if got := r.Percentile(tt.q); got != tt.want {
			t.Errorf("P%.0f = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	prop := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		var min, max time.Duration
		for i, v := range raw {
			d := time.Duration(v)
			r.Add(d)
			if i == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		q := float64(qRaw%100) + 1
		p := r.Percentile(q)
		return p >= min && p <= max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("Value = %d, want 8000", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Add(time.Millisecond)
				_ = r.Mean()
			}
		}()
	}
	wg.Wait()
	if r.N() != 4000 {
		t.Errorf("N = %d", r.N())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("method", "throughput", "p95")
	tbl.AddRow("baseline-sr-cc", "1200", "4ms")
	tbl.AddRow("method1", "3400") // short row pads
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "method") || !strings.Contains(lines[0], "throughput") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "baseline-sr-cc") {
		t.Errorf("row = %q", lines[2])
	}
	// Columns align: each line has the same prefix widths.
	idx := strings.Index(lines[0], "throughput")
	if !strings.HasPrefix(lines[2][idx:], "1200") {
		t.Errorf("misaligned columns:\n%s", out)
	}
	// Extra cells dropped.
	tbl2 := NewTable("a")
	tbl2.AddRow("x", "overflow")
	if strings.Contains(tbl2.String(), "overflow") {
		t.Error("overflow cell rendered")
	}
}
