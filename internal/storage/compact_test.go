package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"asynctp/internal/metric"
)

// TestCompactJournalPreservesRecovery folds a prefix and checks the
// recovered state is byte-identical to recovery from the uncompacted
// journal, with the tail entries untouched.
func TestCompactJournalPreservesRecovery(t *testing.T) {
	s := New()
	for i := 1; i <= 20; i++ {
		k := Key(fmt.Sprintf("k%d", i%5))
		if err := s.Apply([]Write{{Key: k, Value: metric.Value(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Recover().Snapshot()
	wantLen := s.JournalLen()

	removed := s.CompactJournal(12)
	if removed != 11 { // 12 folded entries became 1 checkpoint
		t.Fatalf("removed = %d, want 11", removed)
	}
	if got := s.JournalLen(); got != wantLen-removed {
		t.Fatalf("journal len = %d, want %d", got, wantLen-removed)
	}
	j := s.Journal()
	if !j[0].Checkpoint || j[0].LSN != 12 {
		t.Fatalf("first entry = %+v, want checkpoint at LSN 12", j[0])
	}
	for _, e := range j[1:] {
		if e.Checkpoint || e.LSN <= 12 {
			t.Fatalf("tail entry %+v should be an untouched post-fold batch", e)
		}
	}
	if got := s.Recover().Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state changed by compaction:\n got %v\nwant %v", got, want)
	}
	// LSNs keep ascending after compaction.
	if err := s.Apply([]Write{{Key: "k0", Value: 99}}); err != nil {
		t.Fatal(err)
	}
	j = s.Journal()
	if last := j[len(j)-1]; last.LSN != 21 {
		t.Fatalf("post-compaction LSN = %d, want 21", last.LSN)
	}
}

// TestCompactJournalNoop: folding zero or one entry changes nothing.
func TestCompactJournalNoop(t *testing.T) {
	s := New()
	if removed := s.CompactJournal(100); removed != 0 {
		t.Fatalf("empty journal: removed %d", removed)
	}
	if err := s.Apply([]Write{{Key: "a", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if removed := s.CompactJournal(1); removed != 0 {
		t.Fatalf("single entry: removed %d", removed)
	}
	if j := s.Journal(); len(j) != 1 || j[0].Checkpoint {
		t.Fatalf("journal mutated by no-op compaction: %+v", j)
	}
}

// TestAutoCompactBoundsJournal: the soft cap keeps the journal length
// flat across a long run without changing the recovered state.
func TestAutoCompactBoundsJournal(t *testing.T) {
	s := New()
	const limit = 32
	s.SetJournalLimit(limit)
	for i := 1; i <= 10*limit; i++ {
		k := Key(fmt.Sprintf("k%d", i%7))
		if err := s.Apply([]Write{{Key: k, Value: metric.Value(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.JournalLen(); got > limit+1 {
		t.Fatalf("journal len = %d, want <= %d (soft cap + checkpoint)", got, limit+1)
	}
	if got, want := s.Recover().Snapshot(), s.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverged under auto-compaction:\n got %v\nwant %v", got, want)
	}
}

// TestCompactConcurrentWithApply hammers Apply from many goroutines
// (disjoint keys, as the lock manager guarantees for conflicting
// batches) while compactions run, then checks recovery still reproduces
// the live state. Run under -race this is the journal-striping
// contention test.
func TestCompactConcurrentWithApply(t *testing.T) {
	s := New()
	s.SetJournalLimit(16)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := Key(fmt.Sprintf("w%d", w))
			for i := 1; i <= perWriter; i++ {
				if err := s.Apply([]Write{{Key: k, Value: metric.Value(i)}}); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					s.CompactJournal(s.Journal()[0].LSN)
				}
			}
		}(w)
	}
	wg.Wait()
	want := s.Snapshot()
	if len(want) != writers {
		t.Fatalf("snapshot has %d keys, want %d", len(want), writers)
	}
	for k, v := range want {
		if v != perWriter {
			t.Fatalf("%s = %d, want %d (last write must win in LSN order)", k, v, perWriter)
		}
	}
	if got := s.Recover().Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state != live state:\n got %v\nwant %v", got, want)
	}
}
