package driver

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"asynctp/internal/metric"
	"asynctp/internal/queue"
	"asynctp/internal/storage"
	"asynctp/internal/storage/wal"
)

// diskDriver persists every committed batch to a per-site segmented WAL
// with group-commit fsync, plus periodic snapshots that truncate the log
// behind them. Layout: <Dir>/<site>/wal-*.seg + snapshot.ck.
type diskDriver struct {
	params Params
}

func (d *diskDriver) Name() string { return "disk" }

func (d *diskDriver) Open(site string, init map[storage.Key]metric.Value) (Backend, error) {
	b := &diskBackend{
		site: site,
		dir:  filepath.Join(d.params.Dir, site),
		p:    d.params,
	}
	if err := b.open(init); err != nil {
		return nil, err
	}
	return b, nil
}

// diskBackend is one site's disk-durable storage. The commit path is
// lock-free here (Store.Apply → Commit → wal.Append handles its own
// serialization); mu guards the aux-blob cache and sequence.
type diskBackend struct {
	site string
	dir  string
	p    Params

	mu     sync.Mutex // aux cache + seq; held briefly, never across fsync
	aux    map[string][]byte
	auxSeq uint64

	ckptMu   sync.Mutex // serializes checkpoints
	ckptBusy atomic.Bool
	appends  atomic.Uint64 // commit counter, paces the auto-checkpoint probe

	store *storage.Store
	w     *wal.Writer
}

// hook adapts the driver-level crash hook to the wal interface.
type hookAdapter struct {
	site string
	fn   func(site string, p wal.CrashPoint) wal.Action
}

func (h hookAdapter) Act(p wal.CrashPoint) wal.Action { return h.fn(h.site, p) }

// walOptions assembles the writer options from params.
func (b *diskBackend) walOptions() []wal.Option {
	opts := []wal.Option{
		wal.WithGroupCommit(b.p.SyncEvery, b.p.SyncBatch),
	}
	if b.p.SegmentBytes > 0 {
		opts = append(opts, wal.WithSegmentBytes(b.p.SegmentBytes))
	}
	if b.p.Hook != nil {
		opts = append(opts, wal.WithHook(hookAdapter{site: b.site, fn: b.p.Hook}))
	}
	if obs := b.p.Obs; obs != nil {
		site := b.site
		opts = append(opts, wal.WithSyncObserver(func(records int) {
			obs.WALSynced(site, records)
		}))
	}
	return opts
}

// open recovers the durable image (if any) and starts a fresh WAL
// segment. A site restarting after kill -9 lands here: snapshot + replay
// rebuild the store, torn tails are discarded, and init is ignored
// because the image already exists.
func (b *diskBackend) open(init map[storage.Key]metric.Value) error {
	snap, haveSnap, err := wal.LoadSnapshot(b.dir)
	if err != nil {
		return fmt.Errorf("driver: loading snapshot for %s: %w", b.site, err)
	}
	res, err := wal.Replay(b.dir)
	if err != nil {
		return fmt.Errorf("driver: replaying wal for %s: %w", b.site, err)
	}
	fresh := !haveSnap && len(res.Batches) == 0 && res.Segments == 0

	b.store, b.aux, b.auxSeq = buildImage(snap, res)
	if b.p.Obs != nil && !fresh {
		b.p.Obs.Recovered(b.site, len(res.Batches), res.TornBytes)
	}

	w, err := wal.Open(b.dir, b.walOptions()...)
	if err != nil {
		return err
	}
	b.w = w
	b.store.SetSink(b)

	if fresh && len(init) > 0 {
		writes := make([]storage.Write, 0, len(init))
		for k, v := range init {
			writes = append(writes, storage.Write{Key: k, Value: v})
		}
		sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
		if err := b.store.Apply(writes); err != nil {
			return fmt.Errorf("driver: seeding %s: %w", b.site, err)
		}
	}
	return nil
}

// buildImage folds a snapshot plus replayed records into a live store
// and aux cache. Batch records at or below the snapshot LSN and aux
// records at or below the snapshot's aux cut are already folded in and
// skipped; unpruned segments may legitimately still contain them.
func buildImage(snap wal.Snapshot, res wal.ReplayResult) (*storage.Store, map[string][]byte, uint64) {
	base := make(map[storage.Key]metric.Value, len(snap.State))
	for k, v := range snap.State {
		base[storage.Key(k)] = metric.Value(v)
	}
	entries := make([]storage.JournalEntry, 0, len(res.Batches))
	for _, r := range res.Batches {
		if r.LSN <= snap.LSN {
			continue
		}
		writes := make([]storage.Write, len(r.Writes))
		for i, kv := range r.Writes {
			writes[i] = storage.Write{Key: storage.Key(kv.Key), Value: metric.Value(kv.Val)}
		}
		entries = append(entries, storage.JournalEntry{LSN: r.LSN, Writes: writes})
	}
	st := storage.NewRecovered(base, snap.LSN, entries)

	aux := make(map[string][]byte, len(snap.Aux))
	for name, blob := range snap.Aux {
		aux[name] = append([]byte(nil), blob...)
	}
	auxSeq := snap.AuxSeq
	for name, rec := range res.Aux {
		if rec.Seq > snap.AuxSeq {
			aux[name] = rec.Data
		}
	}
	if res.MaxSeq > auxSeq {
		auxSeq = res.MaxSeq
	}
	return st, aux, auxSeq
}

func (b *diskBackend) Store() *storage.Store { return b.store }

// writer returns the current WAL writer; Recover swaps it under mu.
func (b *diskBackend) writer() *wal.Writer {
	b.mu.Lock()
	w := b.w
	b.mu.Unlock()
	return w
}

// Commit implements storage.CommitSink: every committed batch becomes a
// WAL record, and Apply does not return until the record is fsynced
// (possibly sharing the fsync with a group-commit cohort).
func (b *diskBackend) Commit(e storage.JournalEntry) error {
	kvs := make([]wal.KV, len(e.Writes))
	for i, w := range e.Writes {
		kvs[i] = wal.KV{Key: string(w.Key), Val: int64(w.Value)}
	}
	if err := b.writer().Append(wal.BatchRecord(e.LSN, kvs)); err != nil {
		return err
	}
	b.maybeCheckpoint()
	return nil
}

// maybeCheckpoint probes the log size every 32 commits and kicks a
// background checkpoint when it outgrows CheckpointBytes.
func (b *diskBackend) maybeCheckpoint() {
	if b.p.CheckpointBytes <= 0 {
		return
	}
	if b.appends.Add(1)%32 != 0 {
		return
	}
	if b.writer().LogBytes() < b.p.CheckpointBytes {
		return
	}
	if !b.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer b.ckptBusy.Store(false)
		_ = b.Checkpoint() // best-effort; a failed checkpoint leaves the log longer
	}()
}

// putAux makes one named blob durable: the cache is updated under mu,
// the WAL append (and its group-commit fsync wait) happens outside it so
// concurrent savers and committers share cohorts.
func (b *diskBackend) putAux(name string, data []byte) error {
	b.mu.Lock()
	b.auxSeq++
	seq := b.auxSeq
	b.aux[name] = data
	w := b.w
	b.mu.Unlock()
	return w.Append(wal.AuxRecord(seq, name, data))
}

// SaveQueues serializes and logs the queue image; it returns only after
// the record is fsynced, which is what the queue layer's
// persist-before-ack barrier relies on.
func (b *diskBackend) SaveQueues(st queue.State) error {
	blob, err := st.Encode()
	if err != nil {
		return err
	}
	return b.putAux("queues", blob)
}

func (b *diskBackend) LoadQueues() (queue.State, bool, error) {
	b.mu.Lock()
	blob, ok := b.aux["queues"]
	b.mu.Unlock()
	if !ok {
		return queue.State{}, false, nil
	}
	st, err := queue.DecodeState(blob)
	if err != nil {
		return queue.State{}, false, err
	}
	return st, true, nil
}

// Recover rebuilds the site from its real files, exactly as a process
// restart would: close the (possibly crash-wedged) writer, load the
// snapshot, replay the segments — truncating any torn tail — and resume
// appending into a fresh segment. The in-memory store and aux cache are
// replaced wholesale by the durable image.
func (b *diskBackend) Recover() (*storage.Store, error) {
	b.ckptMu.Lock()
	defer b.ckptMu.Unlock()
	_ = b.w.Close() // flushes if healthy; a crashed writer just closes

	snap, _, err := wal.LoadSnapshot(b.dir)
	if err != nil {
		return nil, err
	}
	res, err := wal.Replay(b.dir)
	if err != nil {
		return nil, err
	}
	store, aux, auxSeq := buildImage(snap, res)
	if b.p.Obs != nil {
		b.p.Obs.Recovered(b.site, len(res.Batches), res.TornBytes)
	}

	w, err := wal.Open(b.dir, b.walOptions()...)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.aux = aux
	b.auxSeq = auxSeq
	b.w = w
	b.mu.Unlock()
	b.store = store
	store.SetSink(b)
	return store, nil
}

// Checkpoint snapshots the current state and truncates the WAL behind
// it. The LSN cut is read before the state snapshot: a batch's data
// writes complete before its LSN is assigned, so every batch at or
// below the cut is fully contained in the snapshot; batches above it
// stay in the log and replay idempotently. The in-memory journal is
// compacted to the same cut, so the disk image and the simulated one
// fold in lockstep.
func (b *diskBackend) Checkpoint() error {
	b.ckptMu.Lock()
	defer b.ckptMu.Unlock()

	b.mu.Lock()
	auxSeq := b.auxSeq
	aux := make(map[string][]byte, len(b.aux))
	for name, blob := range b.aux {
		aux[name] = append([]byte(nil), blob...)
	}
	b.mu.Unlock()
	snapLSN := b.store.LastLSN()
	state := b.store.Snapshot()

	out := wal.Snapshot{
		LSN:    snapLSN,
		AuxSeq: auxSeq,
		State:  make(map[string]int64, len(state)),
		Aux:    aux,
	}
	for k, v := range state {
		out.State[string(k)] = int64(v)
	}
	var hook wal.Hook
	if b.p.Hook != nil {
		hook = hookAdapter{site: b.site, fn: b.p.Hook}
	}
	if err := wal.WriteSnapshot(b.dir, out, hook); err != nil {
		return err
	}
	if err := b.w.Rotate(); err != nil {
		return err
	}
	pruned, err := b.w.PruneTo(snapLSN, auxSeq)
	if err != nil {
		return err
	}
	b.store.CompactJournal(snapLSN)
	if b.p.Obs != nil {
		b.p.Obs.Checkpointed(b.site, pruned)
	}
	return nil
}

func (b *diskBackend) Close() error { return b.writer().Close() }
