// Package driver is the storage provider layer: one registry of named
// drivers, each able to open per-site backends. The shape follows the
// istorage pattern — an application selects a driver by name ("mem",
// "disk") and gets a uniform Backend regardless of what sits underneath:
// the striped in-memory store, or the same store shadowed by a segmented
// write-ahead log with group-commit fsync.
//
// A Backend owns the durable image of one site: the committed key/value
// state (via *storage.Store) and the auxiliary blobs a site needs to
// survive a crash (the recoverable-queue state). Recover rebuilds the
// store from the durable image — for the disk driver, from real files.
package driver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/queue"
	"asynctp/internal/storage"
	"asynctp/internal/storage/wal"
)

// Observer receives durability events (metrics). Implementations must be
// cheap; a nil observer disables reporting.
type Observer interface {
	// WALSynced fires after each fsync with the number of records the
	// sync covered (the group-commit batch size).
	WALSynced(site string, records int)
	// Recovered fires after a site's store is rebuilt from the durable
	// image: entries replayed over the snapshot and torn bytes discarded.
	Recovered(site string, entries int, tornBytes int64)
	// Checkpointed fires after a snapshot+truncation pass with the
	// number of WAL segment files pruned.
	Checkpointed(site string, prunedSegments int)
}

// Params configures a driver instance. Only the disk driver reads the
// file-level knobs; every field has a usable zero value except Dir,
// which the disk driver requires.
type Params struct {
	// Dir is the root directory; each site gets Dir/<site>.
	Dir string
	// SyncEvery > 0 enables group-commit fsync (cohorts share a sync,
	// batched by the in-flight fsync's duration); 0 fsyncs every append.
	SyncEvery time.Duration
	// SyncBatch caps a sync cohort (default 128).
	SyncBatch int
	// SegmentBytes is the WAL rotation threshold (default 4 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a background snapshot+truncation when the
	// log grows past it (0 disables auto-checkpointing).
	CheckpointBytes int64
	// Hook is consulted at WAL crash points (fault injection); site
	// names which endpoint is acting.
	Hook func(site string, p wal.CrashPoint) wal.Action
	// Obs receives durability metrics.
	Obs Observer
}

// Driver opens per-site backends.
type Driver interface {
	// Name returns the registered driver name.
	Name() string
	// Open returns the backend for one site, seeding init on first open.
	// A disk backend that finds an existing durable image recovers from
	// it and ignores init.
	Open(site string, init map[storage.Key]metric.Value) (Backend, error)
}

// Backend is one site's durable storage.
type Backend interface {
	// Store returns the live store (attach executors and locks to it).
	Store() *storage.Store
	// SaveQueues makes the recoverable-queue image durable. It must not
	// return until the image would survive a crash.
	SaveQueues(st queue.State) error
	// LoadQueues returns the last saved queue image, ok=false when none.
	LoadQueues() (st queue.State, ok bool, err error)
	// Recover rebuilds the store from the durable image (for the disk
	// driver: snapshot + WAL replay from real files) and returns it. The
	// caller must drop the old Store pointer and use the returned one.
	Recover() (*storage.Store, error)
	// Checkpoint folds the durable image: snapshot the current state and
	// truncate the WAL behind it.
	Checkpoint() error
	// Close releases files. The backend must already be quiescent.
	Close() error
}

// Factory builds a driver from params.
type Factory func(p Params) (Driver, error)

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register adds a named driver factory; later registrations of the same
// name win (tests override).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// New builds the named driver. Known names out of the box: "mem", "disk".
func New(name string, p Params) (Driver, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("driver: unknown driver %q (have %v)", name, Names())
	}
	return f(p)
}

// Names lists the registered drivers, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("mem", func(p Params) (Driver, error) { return &memDriver{}, nil })
	Register("disk", func(p Params) (Driver, error) {
		if p.Dir == "" {
			return nil, fmt.Errorf("driver: disk driver requires Params.Dir")
		}
		return &diskDriver{params: p}, nil
	})
}
