package driver

import (
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/queue"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/storage/wal"
)

func init() { queue.RegisterPayloadType(testPayload{}) }

type testPayload struct {
	N int
}

func openDisk(t *testing.T, dir string, opts ...func(*Params)) Backend {
	t.Helper()
	p := Params{Dir: dir, SyncEvery: 200 * time.Microsecond, SegmentBytes: 4 << 10}
	for _, o := range opts {
		o(&p)
	}
	d, err := New("disk", p)
	if err != nil {
		t.Fatal(err)
	}
	be, err := d.Open("NY", map[storage.Key]metric.Value{"a": 100, "b": 50})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestRegistryKnowsBuiltins(t *testing.T) {
	for _, name := range []string{"mem", "disk"} {
		d, err := New(name, Params{Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("Name() = %q, want %q", d.Name(), name)
		}
	}
	if _, err := New("bogus", Params{}); err == nil {
		t.Error("unknown driver did not error")
	}
	if _, err := New("disk", Params{}); err == nil {
		t.Error("disk driver without Dir did not error")
	}
}

func TestDiskSeedAndReopen(t *testing.T) {
	dir := t.TempDir()
	be := openDisk(t, dir)
	st := be.Store()
	if st.Get("a") != 100 || st.Get("b") != 50 {
		t.Fatalf("seed: a=%d b=%d", st.Get("a"), st.Get("b"))
	}
	if err := st.Apply([]storage.Write{{Key: "a", Value: 75}, {Key: "c", Value: 25}}); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the durable image wins, init is ignored.
	d, err := New("disk", Params{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	be2, err := d.Open("NY", map[storage.Key]metric.Value{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	st2 := be2.Store()
	if st2.Get("a") != 75 || st2.Get("b") != 50 || st2.Get("c") != 25 {
		t.Errorf("reopened: a=%d b=%d c=%d", st2.Get("a"), st2.Get("b"), st2.Get("c"))
	}
	// LSNs must continue, not restart.
	if err := st2.Apply([]storage.Write{{Key: "d", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if st2.LastLSN() != 3 {
		t.Errorf("LastLSN after reopen+apply = %d, want 3", st2.LastLSN())
	}
}

func TestDiskRecoverDropsUnloggedState(t *testing.T) {
	dir := t.TempDir()
	be := openDisk(t, dir)
	st := be.Store()
	if err := st.Apply([]storage.Write{{Key: "a", Value: 75}}); err != nil {
		t.Fatal(err)
	}
	// Dirty, uncommitted writes (an in-flight transaction's Set calls).
	st.Set("a", 1)
	st.Set("ghost", 9)

	rec, err := be.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if rec.Get("a") != 75 || rec.Has("ghost") {
		t.Errorf("recovered: a=%d ghost=%v", rec.Get("a"), rec.Has("ghost"))
	}
	// The recovered store keeps committing to the same log.
	if err := rec.Apply([]storage.Write{{Key: "post", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	rec2, err := be.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Get("post") != 1 {
		t.Error("write after recovery did not survive a second recovery")
	}
}

func TestDiskQueueStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	be := openDisk(t, dir)
	qs := queue.State{
		NextSeq: map[simnet.SiteID]uint64{"LA": 3},
		Outbox: map[string]queue.OutboxMsg{
			"NY>LA-3": {Msg: queue.Msg{ID: "NY>LA-3", Seq: 3, From: "NY", Queue: "pieces", Payload: testPayload{N: 7}}, To: "LA"},
		},
		Queues:   map[string][]queue.Msg{"pieces": {{ID: "LA>NY-1", Seq: 1, From: "LA", Queue: "pieces", Payload: testPayload{N: 1}}}},
		Inflight: map[string]queue.Msg{},
		Seen:     map[simnet.SiteID]queue.SeenState{"LA": {Prefix: 1, Sparse: []uint64{4}}},
	}
	if err := be.SaveQueues(qs); err != nil {
		t.Fatal(err)
	}
	be.Close()

	d, _ := New("disk", Params{Dir: dir})
	be2, err := d.Open("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	got, ok, err := be2.LoadQueues()
	if err != nil || !ok {
		t.Fatalf("LoadQueues ok=%v err=%v", ok, err)
	}
	if got.NextSeq["LA"] != 3 || got.Seen["LA"].Prefix != 1 || len(got.Queues["pieces"]) != 1 {
		t.Errorf("queue state = %+v", got)
	}
	if p, _ := got.Queues["pieces"][0].Payload.(testPayload); p.N != 1 {
		t.Errorf("payload = %+v", got.Queues["pieces"][0].Payload)
	}
}

func TestDiskQueueStateEmptyWatermark(t *testing.T) {
	dir := t.TempDir()
	be := openDisk(t, dir)
	if err := be.SaveQueues(queue.State{}); err != nil {
		t.Fatal(err)
	}
	be.Close()
	d, _ := New("disk", Params{Dir: dir})
	be2, err := d.Open("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	got, ok, err := be2.LoadQueues()
	if err != nil || !ok {
		t.Fatalf("empty state: ok=%v err=%v", ok, err)
	}
	if len(got.Outbox) != 0 || len(got.Seen) != 0 {
		t.Errorf("empty state round trip = %+v", got)
	}
}

func TestDiskCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	be := openDisk(t, dir, func(p *Params) { p.SegmentBytes = 512 })
	st := be.Store()
	for i := 0; i < 200; i++ {
		if err := st.Apply([]storage.Write{{Key: "hot-key-with-length", Value: metric.Value(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := be.SaveQueues(queue.State{NextSeq: map[simnet.SiteID]uint64{"LA": 9}}); err != nil {
		t.Fatal(err)
	}
	if err := be.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := st.Snapshot()
	be.Close()

	d, _ := New("disk", Params{Dir: dir})
	be2, err := d.Open("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	got := be2.Store().Snapshot()
	if len(got) != len(want) {
		t.Fatalf("post-checkpoint recovery: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %d, want %d", k, got[k], v)
		}
	}
	qs, ok, err := be2.LoadQueues()
	if err != nil || !ok || qs.NextSeq["LA"] != 9 {
		t.Errorf("queue state after checkpoint: ok=%v err=%v st=%+v", ok, err, qs)
	}
}

func TestDiskCrashHookTearsRecord(t *testing.T) {
	dir := t.TempDir()
	armed, fired := false, false
	be := openDisk(t, dir, func(p *Params) {
		p.Hook = func(site string, pt wal.CrashPoint) wal.Action {
			if armed && pt == wal.PointAppend && !fired {
				fired = true
				return wal.ActTorn
			}
			return wal.ActContinue
		}
	})
	st := be.Store()
	armed = true // the seed apply above already passed through the hook
	err := st.Apply([]storage.Write{{Key: "torn", Value: 1}})
	if err == nil {
		t.Fatal("torn append did not error")
	}
	be.Close()

	d, _ := New("disk", Params{Dir: dir})
	be2, err := d.Open("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	if be2.Store().Has("torn") {
		t.Error("torn record resurrected on recovery")
	}
}

func TestMemAndDiskProduceIdenticalState(t *testing.T) {
	// The same deterministic batch sequence through both drivers must
	// leave identical stores — the acceptance check at the storage layer
	// (the experiments package repeats it through the full site pipeline).
	apply := func(be Backend) map[storage.Key]metric.Value {
		st := be.Store()
		for i := 0; i < 50; i++ {
			if err := st.Apply([]storage.Write{
				{Key: storage.Key("k" + string(rune('a'+i%7))), Value: metric.Value(i * 3)},
				{Key: "counter", Value: metric.Value(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return st.Snapshot()
	}
	md, err := New("mem", Params{})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := md.Open("NY", map[storage.Key]metric.Value{"seed": 5})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := New("disk", Params{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	db, err := dd.Open("NY", map[storage.Key]metric.Value{"seed": 5})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	memSnap := apply(mb)
	diskSnap := apply(db)
	if len(memSnap) != len(diskSnap) {
		t.Fatalf("mem %d keys, disk %d keys", len(memSnap), len(diskSnap))
	}
	for k, v := range memSnap {
		if diskSnap[k] != v {
			t.Errorf("key %s: mem=%d disk=%d", k, v, diskSnap[k])
		}
	}
	// And the disk one must still match after a full file-level recovery.
	rec, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	recSnap := rec.Snapshot()
	for k, v := range memSnap {
		if recSnap[k] != v {
			t.Errorf("after recovery, key %s: mem=%d disk=%d", k, v, recSnap[k])
		}
	}
}
