package driver

import (
	"sync"

	"asynctp/internal/metric"
	"asynctp/internal/queue"
	"asynctp/internal/storage"
)

// memDriver is the in-memory driver: the pre-driver behavior of the
// simulator, unchanged, behind the Backend interface. Durability is
// simulated — the "durable image" is the store's journal plus a held
// queue.State object — which keeps the hot path allocation- and
// fsync-free for experiments that model crashes rather than suffer them.
type memDriver struct{}

func (d *memDriver) Name() string { return "mem" }

func (d *memDriver) Open(site string, init map[storage.Key]metric.Value) (Backend, error) {
	return &memBackend{store: storage.NewFrom(init)}, nil
}

type memBackend struct {
	mu     sync.Mutex
	store  *storage.Store
	queues queue.State
	hasQ   bool
}

func (b *memBackend) Store() *storage.Store { return b.store }

func (b *memBackend) SaveQueues(st queue.State) error {
	b.mu.Lock()
	b.queues = st
	b.hasQ = true
	b.mu.Unlock()
	return nil
}

func (b *memBackend) LoadQueues() (queue.State, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queues, b.hasQ, nil
}

// Recover replays the store's journal — the simulated durable state —
// into the same store: uncommitted Set calls vanish, committed batches
// survive, and Restore resets the journal to a checkpoint of exactly
// the recovered cut.
func (b *memBackend) Recover() (*storage.Store, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered := b.store.Recover()
	b.store.Restore(recovered.Snapshot())
	return b.store, nil
}

func (b *memBackend) Checkpoint() error {
	b.store.CompactJournal(b.store.LastLSN())
	return nil
}

func (b *memBackend) Close() error { return nil }
