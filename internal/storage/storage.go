// Package storage implements the in-memory versioned key-value store that
// backs every simulated site.
//
// The store holds the committed database state. Transactions write through
// it immediately under two-phase locking and undo on abort using
// before-images kept by the transaction layer, so the store itself stays a
// plain concurrent map plus a committed-write journal. The journal gives
// sites a durable-state notion for crash/restore simulation: state
// reconstructed from the journal is exactly the committed state.
//
// # Striping
//
// The live map is sharded by key hash; the journal is sharded
// round-robin with per-entry LSN assignment from an atomic counter, and
// merged by LSN on read (Journal, Recover). Unrelated keys therefore
// never contend on a mutex. Whole-store reads (Snapshot, Sum, Keys …)
// take every data-shard read lock in index order, which still yields a
// consistent cut. LSNs are assigned while holding the target journal
// shard's mutex, so any reader holding all journal-shard mutexes sees a
// gap-free prefix: every assigned LSN is already appended. Replaying
// the merged journal in LSN order reproduces the committed state —
// conflicting batches are ordered by the lock manager (writers hold
// exclusive locks through Apply), so LSN order is a valid serialization.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"asynctp/internal/metric"
)

// Key names a data item. The paper's examples use account names ("X",
// "Y", "checking:42").
type Key string

// Write is a single key/value assignment.
type Write struct {
	Key   Key
	Value metric.Value
}

// JournalEntry is one committed atomic batch.
type JournalEntry struct {
	// LSN is the log sequence number, ascending from 1. LSNs are dense
	// until the first CompactJournal, which folds a prefix of entries
	// into one checkpoint entry.
	LSN uint64
	// Writes are the batch's assignments.
	Writes []Write
	// Checkpoint marks an entry produced by CompactJournal: its writes
	// are the folded state of every entry it replaced.
	Checkpoint bool
}

// dataShard is one shard of the live map.
type dataShard struct {
	mu   sync.RWMutex
	data map[Key]metric.Value
}

// journalShard is one shard of the committed-batch journal.
type journalShard struct {
	mu      sync.Mutex
	entries []JournalEntry
}

// DefaultShards is the default data/journal shard count.
const DefaultShards = 16

// DefaultJournalLimit is the default soft cap on journal entries: when
// an append pushes the total past the cap the journal auto-compacts its
// full prefix into one checkpoint entry. Recovery semantics are
// unchanged (the checkpoint replays to the identical state); the cap
// only bounds memory in long soaks. SetJournalLimit(0) disables it.
const DefaultJournalLimit = 1 << 16

// CommitSink receives every committed batch after it is journaled. A
// durable driver implements it to write the batch to a write-ahead log;
// Apply does not return until Commit does, so when the sink fsyncs
// before returning, "Apply returned" means "batch is durable". A Commit
// error is fatal for the batch's transaction: Apply propagates it and
// the executor aborts, but the in-memory journal entry has already been
// appended, so a store whose sink failed must be treated as crashed.
type CommitSink interface {
	Commit(e JournalEntry) error
}

// Store is a concurrent key-value store over the metric value space.
type Store struct {
	shards  []*dataShard
	jshards []*journalShard
	nextLSN atomic.Uint64
	nextJS  atomic.Uint64 // round-robin journal shard cursor
	jcount  atomic.Int64  // total journal entries across shards
	jlimit  atomic.Int64  // soft cap (0 = unlimited)
	compact sync.Mutex    // serializes compactions
	sink    atomic.Value  // CommitSink, set at most once before use
}

// New returns an empty store.
func New() *Store {
	s := &Store{
		shards:  make([]*dataShard, DefaultShards),
		jshards: make([]*journalShard, DefaultShards),
	}
	for i := range s.shards {
		s.shards[i] = &dataShard{data: make(map[Key]metric.Value)}
	}
	for i := range s.jshards {
		s.jshards[i] = &journalShard{}
	}
	s.jlimit.Store(DefaultJournalLimit)
	return s
}

// NewFrom returns a store seeded with the given contents. The initial load
// is recorded as LSN 1 so that recovery reproduces it.
func NewFrom(init map[Key]metric.Value) *Store {
	s := New()
	if len(init) == 0 {
		return s
	}
	writes := make([]Write, 0, len(init))
	for k, v := range init {
		writes = append(writes, Write{Key: k, Value: v})
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
	if err := s.Apply(writes); err != nil {
		// Apply on a fresh store with a non-empty batch cannot fail.
		panic(fmt.Sprintf("storage: seeding fresh store: %v", err))
	}
	return s
}

// shardFor returns k's data shard (FNV-1a over the key bytes).
func (s *Store) shardFor(k Key) *dataShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Get returns the current value of k. Missing keys read as 0, matching the
// metric space's natural zero (an account that does not exist holds no
// money).
func (s *Store) Get(k Key) metric.Value {
	sh := s.shardFor(k)
	sh.mu.RLock()
	v := sh.data[k]
	sh.mu.RUnlock()
	return v
}

// Has reports whether k has ever been written.
func (s *Store) Has(k Key) bool {
	sh := s.shardFor(k)
	sh.mu.RLock()
	_, ok := sh.data[k]
	sh.mu.RUnlock()
	return ok
}

// Set assigns k := v without journaling. It is the raw cell update used by
// in-flight transactions; the transaction layer journals the final batch at
// commit via Apply, and undoes via Set on abort.
func (s *Store) Set(k Key, v metric.Value) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.data[k] = v
	sh.mu.Unlock()
}

// Apply journals an atomic committed batch. Values must already be present
// in the live map when the batch comes from an in-place committer; Apply
// also (re)assigns them so it works for both write-through and deferred
// writers.
func (s *Store) Apply(writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	cp := make([]Write, len(writes))
	copy(cp, writes)
	for _, w := range cp {
		s.Set(w.Key, w.Value)
	}
	js := s.jshards[s.nextJS.Add(1)%uint64(len(s.jshards))]
	js.mu.Lock()
	// The LSN is assigned under the shard mutex so that a reader holding
	// every journal-shard mutex observes a gap-free LSN prefix.
	lsn := s.nextLSN.Add(1)
	js.entries = append(js.entries, JournalEntry{LSN: lsn, Writes: cp})
	js.mu.Unlock()
	if sink, ok := s.sink.Load().(CommitSink); ok && sink != nil {
		if err := sink.Commit(JournalEntry{LSN: lsn, Writes: cp}); err != nil {
			return err
		}
	}
	if n := s.jcount.Add(1); n > s.jlimit.Load() && s.jlimit.Load() > 0 {
		s.autoCompact()
	}
	return nil
}

// SetSink installs the commit sink consulted by Apply. Install it before
// the store sees concurrent traffic; a nil sink disables the hook.
func (s *Store) SetSink(sink CommitSink) {
	if sink != nil {
		s.sink.Store(sink)
	}
}

// LastLSN returns the highest LSN assigned so far (0 on a fresh store).
func (s *Store) LastLSN() uint64 { return s.nextLSN.Load() }

// SetJournalLimit sets the soft cap on journal entries (0 disables
// auto-compaction). The cap bounds memory, not durability: compaction
// preserves the recovered state exactly.
func (s *Store) SetJournalLimit(n int) {
	s.jlimit.Store(int64(n))
}

// JournalLen returns the number of journal entries currently held.
func (s *Store) JournalLen() int { return int(s.jcount.Load()) }

// lockAllData read-locks every data shard in index order.
func (s *Store) lockAllData() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) unlockAllData() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	s.lockAllData()
	defer s.unlockAllData()
	n := 0
	for _, sh := range s.shards {
		n += len(sh.data)
	}
	return n
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []Key {
	s.lockAllData()
	var keys []Key
	for _, sh := range s.shards {
		for k := range sh.data {
			keys = append(keys, k)
		}
	}
	s.unlockAllData()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Snapshot returns a copy of the full current state (a consistent cut:
// every data shard is read-locked while copying).
func (s *Store) Snapshot() map[Key]metric.Value {
	s.lockAllData()
	defer s.unlockAllData()
	snap := make(map[Key]metric.Value)
	for _, sh := range s.shards {
		for k, v := range sh.data {
			snap[k] = v
		}
	}
	return snap
}

// Restore replaces the live state with snap and resets the journal to a
// single checkpoint entry mirroring snap. The journal must not survive
// the restore: entries with LSNs above the restored cut describe writes
// that the restored state has already forgotten, and a later
// CompactJournal (or Recover) would fold those future writes back into
// the old state. The checkpoint's LSN is the current high-water mark so
// LSNs stay monotonic for writes committed after the restore.
func (s *Store) Restore(snap map[Key]metric.Value) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.data = make(map[Key]metric.Value)
	}
	for k, v := range snap {
		s.shardFor(k).data[k] = v
	}
	s.lockAllJournal()
	for _, js := range s.jshards {
		js.entries = nil
	}
	if len(snap) > 0 {
		writes := make([]Write, 0, len(snap))
		for k, v := range snap {
			writes = append(writes, Write{Key: k, Value: v})
		}
		sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
		cut := s.nextLSN.Load()
		if cut == 0 {
			cut = s.nextLSN.Add(1)
		}
		s.jshards[0].entries = []JournalEntry{{LSN: cut, Writes: writes, Checkpoint: true}}
		s.jcount.Store(1)
	} else {
		s.jcount.Store(0)
	}
	s.unlockAllJournal()
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// mergedJournalLocked collects every entry sorted by LSN. Callers hold
// all journal-shard mutexes.
func (s *Store) mergedJournalLocked() []JournalEntry {
	var out []JournalEntry
	for _, js := range s.jshards {
		out = append(out, js.entries...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}

// lockAllJournal locks every journal shard in index order.
func (s *Store) lockAllJournal() {
	for _, js := range s.jshards {
		js.mu.Lock()
	}
}

func (s *Store) unlockAllJournal() {
	for _, js := range s.jshards {
		js.mu.Unlock()
	}
}

// Journal returns a copy of the committed-batch journal in LSN order.
func (s *Store) Journal() []JournalEntry {
	s.lockAllJournal()
	defer s.unlockAllJournal()
	return s.mergedJournalLocked()
}

// Recover builds a fresh store whose state replays the journal: the
// durable, committed state as of the crash. Uncommitted Set calls made by
// in-flight transactions are lost, exactly as a write-ahead-logged store
// would lose dirty pages whose transactions never committed.
func (s *Store) Recover() *Store {
	entries := s.Journal()
	r := New()
	r.jlimit.Store(s.jlimit.Load())
	var maxLSN uint64
	for _, entry := range entries {
		for _, w := range entry.Writes {
			r.shardFor(w.Key).data[w.Key] = w.Value
		}
		js := r.jshards[r.nextJS.Add(1)%uint64(len(r.jshards))]
		js.entries = append(js.entries, entry)
		r.jcount.Add(1)
		if entry.LSN > maxLSN {
			maxLSN = entry.LSN
		}
	}
	r.nextLSN.Store(maxLSN)
	return r
}

// NewRecovered builds a store from a recovered durable image: base is
// the latest snapshot (folded state as of baseLSN) and entries are the
// journaled batches logged after it, in ascending LSN order. The result
// is exactly the store a crash-surviving site should resume from: data
// replays base then entries, the journal holds a checkpoint for base
// plus the entries, and the LSN counter resumes past the highest
// recovered LSN. Entries at or below baseLSN are skipped — the snapshot
// already folds them.
func NewRecovered(base map[Key]metric.Value, baseLSN uint64, entries []JournalEntry) *Store {
	r := New()
	maxLSN := baseLSN
	if len(base) > 0 {
		writes := make([]Write, 0, len(base))
		for k, v := range base {
			r.shardFor(k).data[k] = v
			writes = append(writes, Write{Key: k, Value: v})
		}
		sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
		lsn := baseLSN
		if lsn == 0 {
			lsn = 1
			maxLSN = 1
		}
		r.jshards[0].entries = []JournalEntry{{LSN: lsn, Writes: writes, Checkpoint: true}}
		r.jcount.Add(1)
	}
	for _, entry := range entries {
		if entry.LSN <= baseLSN {
			continue
		}
		for _, w := range entry.Writes {
			r.shardFor(w.Key).data[w.Key] = w.Value
		}
		js := r.jshards[r.nextJS.Add(1)%uint64(len(r.jshards))]
		js.entries = append(js.entries, entry)
		r.jcount.Add(1)
		if entry.LSN > maxLSN {
			maxLSN = entry.LSN
		}
	}
	r.nextLSN.Store(maxLSN)
	return r
}

// CompactJournal folds every journal entry with LSN <= keepLSN into a
// single checkpoint entry carrying the folded state, and keeps later
// entries untouched. It returns the number of entries removed (folded
// entries minus the checkpoint). Recovery from a compacted journal
// reproduces exactly the state of the uncompacted one: the checkpoint
// replays the folded prefix's final values, then later entries replay
// in LSN order as before. Long soaks call it to keep memory flat.
func (s *Store) CompactJournal(keepLSN uint64) int {
	s.compact.Lock()
	defer s.compact.Unlock()
	return s.compactJournal(keepLSN)
}

// compactJournal is CompactJournal's body; callers hold s.compact.
//
// Each shard's entries are in ascending LSN order by construction (the
// LSN is assigned under the shard mutex just before the append), so the
// folded region of every shard is a plain slice prefix: no global
// merge-and-sort is needed. Folding tracks per-key the highest folded
// LSN so last-writer-wins holds across shards, the prefixes are trimmed
// in place (keeping each shard's capacity for the next fill cycle), and
// the checkpoint — whose LSN precedes every kept entry — is prepended
// to shard 0, preserving per-shard LSN order. This keeps auto-compaction
// O(folded entries) with no large transient allocation, which matters
// because it runs on the commit path of long benchmarks and soaks.
func (s *Store) compactJournal(keepLSN uint64) int {
	s.lockAllJournal()
	defer s.unlockAllJournal()
	type foldVal struct {
		lsn uint64
		v   metric.Value
	}
	fold := make(map[Key]foldVal)
	cuts := make([]int, len(s.jshards))
	folded := 0
	var maxFolded uint64
	for si, js := range s.jshards {
		entries := js.entries
		cut := sort.Search(len(entries), func(i int) bool { return entries[i].LSN > keepLSN })
		cuts[si] = cut
		for _, e := range entries[:cut] {
			for _, w := range e.Writes {
				// >= lets a later write in the same batch win too.
				if fv, ok := fold[w.Key]; !ok || e.LSN >= fv.lsn {
					fold[w.Key] = foldVal{lsn: e.LSN, v: w.Value}
				}
			}
			if e.LSN > maxFolded {
				maxFolded = e.LSN
			}
		}
		folded += cut
	}
	if folded <= 1 {
		return 0 // nothing to gain
	}
	writes := make([]Write, 0, len(fold))
	for k, fv := range fold {
		writes = append(writes, Write{Key: k, Value: fv.v})
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
	ck := JournalEntry{LSN: maxFolded, Writes: writes, Checkpoint: true}
	total := 1 // the checkpoint
	for si, js := range s.jshards {
		if cut := cuts[si]; cut > 0 {
			js.entries = append(js.entries[:0], js.entries[cut:]...)
		}
		total += len(js.entries)
	}
	// maxFolded <= keepLSN < every kept LSN, so prepending the checkpoint
	// keeps shard 0 sorted.
	js0 := s.jshards[0]
	js0.entries = append(js0.entries, JournalEntry{})
	copy(js0.entries[1:], js0.entries)
	js0.entries[0] = ck
	s.jcount.Store(int64(total))
	return folded - 1
}

// autoCompact folds the entire current journal into one checkpoint.
// It runs at most one compaction at a time; concurrent appends simply
// land after the fold point and are kept.
func (s *Store) autoCompact() {
	if !s.compact.TryLock() {
		return // a compaction is already running
	}
	defer s.compact.Unlock()
	s.compactJournal(s.nextLSN.Load())
}

// Sum returns the total of the given keys (missing keys count 0). It is
// the consistency invariant of the banking workloads: transfers conserve
// the sum.
func (s *Store) Sum(keys []Key) metric.Value {
	s.lockAllData()
	defer s.unlockAllData()
	var total metric.Value
	for _, k := range keys {
		total += s.shardForNoLock(k)[k]
	}
	return total
}

// shardForNoLock returns k's shard map; callers hold the shard locks.
func (s *Store) shardForNoLock(k Key) map[Key]metric.Value {
	return s.shardFor(k).data
}

// SumAll returns the total over every key present.
func (s *Store) SumAll() metric.Value {
	s.lockAllData()
	defer s.unlockAllData()
	var total metric.Value
	for _, sh := range s.shards {
		for _, v := range sh.data {
			total += v
		}
	}
	return total
}
