// Package storage implements the in-memory versioned key-value store that
// backs every simulated site.
//
// The store holds the committed database state. Transactions write through
// it immediately under two-phase locking and undo on abort using
// before-images kept by the transaction layer, so the store itself stays a
// plain concurrent map plus a committed-write journal. The journal gives
// sites a durable-state notion for crash/restore simulation: state
// reconstructed from the journal is exactly the committed state.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"asynctp/internal/metric"
)

// Key names a data item. The paper's examples use account names ("X",
// "Y", "checking:42").
type Key string

// Write is a single key/value assignment.
type Write struct {
	Key   Key
	Value metric.Value
}

// JournalEntry is one committed atomic batch, in commit order.
type JournalEntry struct {
	// LSN is the log sequence number, dense from 1.
	LSN uint64
	// Writes are the batch's assignments.
	Writes []Write
}

// Store is a concurrent key-value store over the metric value space.
type Store struct {
	mu      sync.RWMutex
	data    map[Key]metric.Value
	journal []JournalEntry
	nextLSN uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[Key]metric.Value), nextLSN: 1}
}

// NewFrom returns a store seeded with the given contents. The initial load
// is recorded as LSN 1 so that recovery reproduces it.
func NewFrom(init map[Key]metric.Value) *Store {
	s := New()
	if len(init) == 0 {
		return s
	}
	writes := make([]Write, 0, len(init))
	for k, v := range init {
		writes = append(writes, Write{Key: k, Value: v})
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].Key < writes[j].Key })
	if err := s.Apply(writes); err != nil {
		// Apply on a fresh store with a non-empty batch cannot fail.
		panic(fmt.Sprintf("storage: seeding fresh store: %v", err))
	}
	return s
}

// Get returns the current value of k. Missing keys read as 0, matching the
// metric space's natural zero (an account that does not exist holds no
// money).
func (s *Store) Get(k Key) metric.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

// Has reports whether k has ever been written.
func (s *Store) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[k]
	return ok
}

// Set assigns k := v without journaling. It is the raw cell update used by
// in-flight transactions; the transaction layer journals the final batch at
// commit via Apply, and undoes via Set on abort.
func (s *Store) Set(k Key, v metric.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
}

// Apply journals an atomic committed batch. Values must already be present
// in the live map when the batch comes from an in-place committer; Apply
// also (re)assigns them so it works for both write-through and deferred
// writers.
func (s *Store) Apply(writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]Write, len(writes))
	copy(cp, writes)
	for _, w := range cp {
		s.data[w.Key] = w.Value
	}
	s.journal = append(s.journal, JournalEntry{LSN: s.nextLSN, Writes: cp})
	s.nextLSN++
	return nil
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]Key, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Snapshot returns a copy of the full current state.
func (s *Store) Snapshot() map[Key]metric.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := make(map[Key]metric.Value, len(s.data))
	for k, v := range s.data {
		snap[k] = v
	}
	return snap
}

// Restore replaces the live state with snap, keeping the journal. It is
// the test hook for "reset to a known state".
func (s *Store) Restore(snap map[Key]metric.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[Key]metric.Value, len(snap))
	for k, v := range snap {
		s.data[k] = v
	}
}

// Journal returns a copy of the committed-batch journal.
func (s *Store) Journal() []JournalEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]JournalEntry, len(s.journal))
	copy(out, s.journal)
	return out
}

// Recover builds a fresh store whose state replays the journal: the
// durable, committed state as of the crash. Uncommitted Set calls made by
// in-flight transactions are lost, exactly as a write-ahead-logged store
// would lose dirty pages whose transactions never committed.
func (s *Store) Recover() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := New()
	for _, entry := range s.journal {
		for _, w := range entry.Writes {
			r.data[w.Key] = w.Value
		}
		r.journal = append(r.journal, entry)
		r.nextLSN = entry.LSN + 1
	}
	return r
}

// Sum returns the total of the given keys (missing keys count 0). It is
// the consistency invariant of the banking workloads: transfers conserve
// the sum.
func (s *Store) Sum(keys []Key) metric.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total metric.Value
	for _, k := range keys {
		total += s.data[k]
	}
	return total
}

// SumAll returns the total over every key present.
func (s *Store) SumAll() metric.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total metric.Value
	for _, v := range s.data {
		total += v
	}
	return total
}
