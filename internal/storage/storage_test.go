package storage

import (
	"errors"
	"maps"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"asynctp/internal/metric"
)

func TestGetMissingKeyIsZero(t *testing.T) {
	s := New()
	if got := s.Get("nope"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	if s.Has("nope") {
		t.Error("Has(missing) = true")
	}
}

func TestSetGet(t *testing.T) {
	s := New()
	s.Set("x", 100)
	if got := s.Get("x"); got != 100 {
		t.Errorf("Get(x) = %d, want 100", got)
	}
	if !s.Has("x") {
		t.Error("Has(x) = false after Set")
	}
	s.Set("x", -7)
	if got := s.Get("x"); got != -7 {
		t.Errorf("Get(x) = %d after overwrite, want -7", got)
	}
}

func TestNewFromSeedsAndJournals(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"a": 1, "b": 2})
	if s.Get("a") != 1 || s.Get("b") != 2 {
		t.Errorf("seeded values wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	j := s.Journal()
	if len(j) != 1 || j[0].LSN != 1 || len(j[0].Writes) != 2 {
		t.Errorf("journal after seed = %+v", j)
	}
	if NewFrom(nil).Len() != 0 {
		t.Error("NewFrom(nil) not empty")
	}
}

func TestApplyAtomicBatch(t *testing.T) {
	s := New()
	if err := s.Apply([]Write{{Key: "x", Value: 5}, {Key: "y", Value: 6}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.Get("x") != 5 || s.Get("y") != 6 {
		t.Errorf("post-Apply state: x=%d y=%d", s.Get("x"), s.Get("y"))
	}
	if err := s.Apply(nil); err != nil {
		t.Fatalf("Apply(nil): %v", err)
	}
	if got := len(s.Journal()); got != 1 {
		t.Errorf("empty Apply journaled: %d entries", got)
	}
}

func TestApplyCopiesBatch(t *testing.T) {
	s := New()
	batch := []Write{{Key: "x", Value: 1}}
	if err := s.Apply(batch); err != nil {
		t.Fatal(err)
	}
	batch[0].Value = 999
	if got := s.Journal()[0].Writes[0].Value; got != 1 {
		t.Errorf("journal aliases caller batch: %d", got)
	}
}

func TestJournalLSNsAreDense(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.Apply([]Write{{Key: "k", Value: metric.Value(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, entry := range s.Journal() {
		if entry.LSN != uint64(i+1) {
			t.Errorf("entry %d has LSN %d", i, entry.LSN)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"c": 1, "a": 2, "b": 3})
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"x": 10})
	snap := s.Snapshot()
	s.Set("x", 20)
	if snap["x"] != 10 {
		t.Errorf("snapshot mutated: %d", snap["x"])
	}
	snap["x"] = 99
	if s.Get("x") != 20 {
		t.Errorf("store mutated through snapshot: %d", s.Get("x"))
	}
}

func TestRestore(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"x": 1, "y": 2})
	s.Restore(map[Key]metric.Value{"z": 3})
	if s.Len() != 1 || s.Get("z") != 3 || s.Has("x") {
		t.Errorf("Restore failed: len=%d z=%d", s.Len(), s.Get("z"))
	}
}

func TestRecoverDropsUncommittedWrites(t *testing.T) {
	s := New()
	if err := s.Apply([]Write{{Key: "x", Value: 100}}); err != nil {
		t.Fatal(err)
	}
	// Dirty write by an in-flight transaction that never commits.
	s.Set("x", 55)
	s.Set("dirty", 1)

	r := s.Recover()
	if got := r.Get("x"); got != 100 {
		t.Errorf("recovered x = %d, want committed 100", got)
	}
	if r.Has("dirty") {
		t.Error("recovered store kept uncommitted key")
	}
	// The recovered store must keep journaling from the right LSN.
	if err := r.Apply([]Write{{Key: "x", Value: 101}}); err != nil {
		t.Fatal(err)
	}
	j := r.Journal()
	if j[len(j)-1].LSN != 2 {
		t.Errorf("post-recovery LSN = %d, want 2", j[len(j)-1].LSN)
	}
}

func TestRecoverReplayEquivalenceProperty(t *testing.T) {
	// Replaying the journal must reproduce exactly the state produced by
	// the sequence of Apply calls, for any batch sequence.
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		keys := []Key{"a", "b", "c", "d"}
		for i := 0; i < int(steps%30); i++ {
			n := rng.Intn(3) + 1
			batch := make([]Write, 0, n)
			for j := 0; j < n; j++ {
				batch = append(batch, Write{
					Key:   keys[rng.Intn(len(keys))],
					Value: metric.Value(rng.Intn(1000)),
				})
			}
			if err := s.Apply(batch); err != nil {
				return false
			}
		}
		r := s.Recover()
		want := s.Snapshot()
		got := r.Snapshot()
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSums(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"x": 10, "y": -3, "z": 5})
	if got := s.Sum([]Key{"x", "y"}); got != 7 {
		t.Errorf("Sum(x,y) = %d, want 7", got)
	}
	if got := s.Sum([]Key{"x", "missing"}); got != 10 {
		t.Errorf("Sum with missing = %d, want 10", got)
	}
	if got := s.SumAll(); got != 12 {
		t.Errorf("SumAll = %d, want 12", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			k := Key(rune('a' + id))
			for j := 0; j < 200; j++ {
				s.Set(k, metric.Value(j))
				_ = s.Get(k)
				_ = s.SumAll()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
	for i := 0; i < 8; i++ {
		if got := s.Get(Key(rune('a' + i))); got != 199 {
			t.Errorf("key %c = %d, want 199", 'a'+i, got)
		}
	}
}

func TestRestoreTruncatesStaleJournal(t *testing.T) {
	// Regression: Restore used to keep the journal untouched, so entries
	// with LSNs above the restored snapshot's cut survived and the next
	// CompactJournal (or Recover) folded those future writes back into
	// the old state.
	s := NewFrom(map[Key]metric.Value{"x": 1})
	if err := s.Apply([]Write{{Key: "x", Value: 2}}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot() // x=2
	if err := s.Apply([]Write{{Key: "x", Value: 9}, {Key: "leak", Value: 7}}); err != nil {
		t.Fatal(err)
	}
	s.Restore(snap)
	s.CompactJournal(s.LastLSN())
	r := s.Recover()
	if got := r.Get("x"); got != 2 {
		t.Errorf("recovered x = %d, want restored 2", got)
	}
	if r.Has("leak") {
		t.Error("recovered store resurrected a write from above the restore cut")
	}
	if got, want := r.Snapshot(), s.Snapshot(); !maps.Equal(got, want) {
		t.Errorf("Recover after Restore+Compact = %v, want %v", got, want)
	}
}

func TestRestoreKeepsLSNMonotonic(t *testing.T) {
	s := NewFrom(map[Key]metric.Value{"x": 1})
	if err := s.Apply([]Write{{Key: "x", Value: 2}}); err != nil {
		t.Fatal(err)
	}
	cut := s.LastLSN()
	s.Restore(s.Snapshot())
	if err := s.Apply([]Write{{Key: "y", Value: 3}}); err != nil {
		t.Fatal(err)
	}
	j := s.Journal()
	if len(j) != 2 || !j[0].Checkpoint {
		t.Fatalf("journal after restore = %+v, want [checkpoint, y]", j)
	}
	if j[0].LSN != cut || j[1].LSN <= cut {
		t.Errorf("LSNs not monotonic across restore: %d then %d", j[0].LSN, j[1].LSN)
	}
}

type recordingSink struct {
	mu      sync.Mutex
	entries []JournalEntry
	fail    error
}

func (r *recordingSink) Commit(e JournalEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil {
		return r.fail
	}
	r.entries = append(r.entries, e)
	return nil
}

func TestCommitSinkSeesEveryBatch(t *testing.T) {
	sink := &recordingSink{}
	s := New()
	s.SetSink(sink)
	for i := 1; i <= 5; i++ {
		if err := s.Apply([]Write{{Key: "x", Value: metric.Value(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.entries) != 5 {
		t.Fatalf("sink saw %d batches, want 5", len(sink.entries))
	}
	for i, e := range sink.entries {
		if e.LSN != uint64(i+1) {
			t.Errorf("sink entry %d LSN = %d, want %d", i, e.LSN, i+1)
		}
	}
}

func TestCommitSinkErrorPropagates(t *testing.T) {
	sink := &recordingSink{fail: errSinkDown}
	s := New()
	s.SetSink(sink)
	if err := s.Apply([]Write{{Key: "x", Value: 1}}); err != errSinkDown {
		t.Errorf("Apply error = %v, want sink error", err)
	}
}

var errSinkDown = errors.New("sink down")
