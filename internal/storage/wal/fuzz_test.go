package wal

import (
	"testing"
)

// FuzzWALDecode feeds arbitrary byte tails to the frame decoder. The
// contract under fuzz: never panic, never read past the first bad
// length/CRC, and re-encoding every decoded record must reproduce the
// consumed prefix exactly (decode∘encode is the identity on valid
// frames).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame(encodePayload(BatchRecord(1, []KV{{Key: "x", Val: 42}}))))
	f.Add(encodeFrame(encodePayload(AuxRecord(7, "queues", []byte("blob")))))
	torn := encodeFrame(encodePayload(BatchRecord(2, []KV{{Key: "torn", Val: -1}})))
	f.Add(torn[:len(torn)/2])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed := DecodeFrames(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		for _, r := range recs {
			if !r.IsBatch() && !r.IsAux() {
				t.Fatalf("decoded record with unknown type %d", r.Type)
			}
		}
		// Decoding the consumed prefix alone must be stable: same record
		// count, all bytes consumed (decode stops only at the tail).
		again, c2 := DecodeFrames(data[:consumed])
		if c2 != consumed || len(again) != len(recs) {
			t.Fatalf("prefix re-decode: %d/%d records, %d/%d bytes", len(again), len(recs), c2, consumed)
		}
		// Appending garbage after a valid prefix must not disturb it.
		tail := append(append([]byte(nil), data[:consumed]...), 0xde, 0xad, 0x01)
		again2, c3 := DecodeFrames(tail)
		if c3 != consumed || len(again2) != len(recs) {
			t.Fatalf("garbage tail disturbed decode: %d records, %d bytes", len(again2), c3)
		}
	})
}
