package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ReplayResult is everything recovered from a log directory.
type ReplayResult struct {
	// Batches are the batch records in append order (ascending LSN as
	// written; the caller sorts if it needs a strict order).
	Batches []Record
	// Aux maps each blob name to its newest recovered record.
	Aux map[string]Record
	// MaxSeq is the highest aux sequence seen.
	MaxSeq uint64
	// TornBytes counts bytes discarded as torn tails across segments.
	TornBytes int64
	// Segments is the number of segment files read.
	Segments int
}

// Replay reads every segment under dir in index order. Within a
// segment, decoding stops at the first malformed frame (torn tail) and
// the remaining bytes are counted as torn; later segments still replay,
// because a tail can only be torn in the segment that was active at
// crash time and every later segment is a fresh post-crash file.
func Replay(dir string) (ReplayResult, error) {
	res := ReplayResult{Aux: make(map[string]Record)}
	segs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	for _, s := range segs {
		b, err := os.ReadFile(s.path)
		if err != nil {
			return res, fmt.Errorf("wal: reading %s: %w", s.path, err)
		}
		recs, consumed := DecodeFrames(b)
		res.TornBytes += int64(len(b) - consumed)
		res.Segments++
		for _, r := range recs {
			switch {
			case r.IsBatch():
				res.Batches = append(res.Batches, r)
			case r.IsAux():
				if r.Seq >= res.Aux[r.Name].Seq {
					res.Aux[r.Name] = r
				}
				if r.Seq > res.MaxSeq {
					res.MaxSeq = r.Seq
				}
			}
		}
	}
	sort.SliceStable(res.Batches, func(i, j int) bool {
		return res.Batches[i].LSN < res.Batches[j].LSN
	})
	return res, nil
}

// Snapshot is the durable checkpoint image: the folded state as of LSN,
// plus the aux blobs (and their sequence high-water mark) the checkpoint
// covers. Replay applies only batch records above LSN and aux records
// above AuxSeq on top of it.
type Snapshot struct {
	LSN    uint64
	AuxSeq uint64
	State  map[string]int64
	Aux    map[string][]byte
}

const (
	snapName = "snapshot.ck"
	snapTmp  = "snapshot.ck.tmp"
)

// WriteSnapshot atomically publishes snap under dir: gob-encode into a
// CRC frame, write to a temp file, fsync, rename over the previous
// snapshot, fsync the directory. hook (optional) is consulted at
// PointSnapshot between the temp write and the rename — a crash there
// leaves the old snapshot intact.
func WriteSnapshot(dir string, snap Snapshot, hook Hook) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return err
	}
	frame := encodeFrame(payload.Bytes())
	tmp := filepath.Join(dir, snapTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hook != nil && hook.Act(PointSnapshot) == ActCrash {
		return ErrCrashed
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadSnapshot reads the current snapshot. ok is false when none exists
// or the file fails its CRC (a torn snapshot write never got renamed, so
// a bad published snapshot means tampering — treated as absent, and
// recovery falls back to full-log replay).
func LoadSnapshot(dir string) (snap Snapshot, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, snapName))
	if os.IsNotExist(err) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, err
	}
	payload, valid := decodeOneFrame(b)
	if !valid {
		return Snapshot{}, false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return Snapshot{}, false, nil
	}
	return snap, true, nil
}

// decodeOneFrame validates and unwraps a single-frame file.
func decodeOneFrame(b []byte) ([]byte, bool) {
	if len(b) < frameHeader {
		return nil, false
	}
	length := int64(binary.LittleEndian.Uint32(b[0:4]))
	if length == 0 || length > maxFrame || frameHeader+length != int64(len(b)) {
		return nil, false
	}
	payload := b[frameHeader:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, false
	}
	return payload, true
}

// syncDir fsyncs a directory so renames and creates are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
