// Package wal implements the segmented write-ahead log behind the disk
// storage driver.
//
// The log is a directory of numbered segment files. Each record is a
// CRC-framed blob:
//
//	[length u32 LE] [crc32(IEEE) of payload u32 LE] [payload]
//
// The payload's first byte is the record type: batch records carry one
// committed atomic batch (LSN + writes), aux records carry a named
// opaque blob (queue state, dedup images) stamped with a monotonic
// sequence so replay applies only blobs newer than the snapshot.
//
// Durability is group-commit: appenders write their frame under the
// writer mutex and then wait on the current sync cohort; a background
// syncer fsyncs cohorts back-to-back and releases every waiter. The
// accumulation window is the in-flight fsync itself — every append that
// lands while one fsync runs shares the next — so one fsync covers many
// commits, which is what makes a high-rate chopped-transaction pipeline
// affordable on real disks. Group commit off degrades to
// fsync-per-append.
//
// Torn tails: a crash can leave a partial frame at the end of the last
// segment. Replay stops at the first bad length or CRC within a segment
// and moves to the next segment — a frame that never finished was never
// acknowledged, so dropping it is correct. Segments created after a
// crash are always fresh files, so a torn tail can only ever terminate
// the segment that was active when the process died.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Record types.
const (
	recBatch = 1
	recAux   = 2
)

// frameHeader is [len u32][crc u32].
const frameHeader = 8

// maxFrame bounds a record's payload; larger lengths are treated as
// corruption (protects replay from absurd allocations on garbage input).
const maxFrame = 16 << 20

// KV is one key/value assignment inside a batch record. The wal package
// is deliberately independent of the storage package's types; the driver
// converts.
type KV struct {
	Key string
	Val int64
}

// Record is one decoded WAL record.
type Record struct {
	// Type is recBatch or recAux (exposed via IsBatch/IsAux).
	Type byte
	// LSN stamps batch records (the store's log sequence number).
	LSN uint64
	// Writes are the batch's assignments (batch records).
	Writes []KV
	// Seq stamps aux records (monotonic per log).
	Seq uint64
	// Name and Data carry an aux record's blob.
	Name string
	Data []byte
}

// IsBatch reports whether r carries a committed batch.
func (r Record) IsBatch() bool { return r.Type == recBatch }

// IsAux reports whether r carries an auxiliary blob.
func (r Record) IsAux() bool { return r.Type == recAux }

// BatchRecord builds a batch record.
func BatchRecord(lsn uint64, writes []KV) Record {
	return Record{Type: recBatch, LSN: lsn, Writes: writes}
}

// AuxRecord builds an aux record.
func AuxRecord(seq uint64, name string, data []byte) Record {
	return Record{Type: recAux, Seq: seq, Name: name, Data: data}
}

// encodePayload serializes a record payload (without the frame header).
func encodePayload(r Record) []byte {
	buf := make([]byte, 1, 64+len(r.Data))
	buf[0] = r.Type
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	switch r.Type {
	case recBatch:
		putUvarint(r.LSN)
		putUvarint(uint64(len(r.Writes)))
		for _, w := range r.Writes {
			putUvarint(uint64(len(w.Key)))
			buf = append(buf, w.Key...)
			putVarint(w.Val)
		}
	case recAux:
		putUvarint(r.Seq)
		putUvarint(uint64(len(r.Name)))
		buf = append(buf, r.Name...)
		putUvarint(uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	return buf
}

// decodePayload parses one record payload. It returns an error on any
// malformed input and never panics (fuzzed).
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, errors.New("wal: empty payload")
	}
	r := Record{Type: p[0]}
	p = p[1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("wal: bad uvarint")
		}
		p = p[n:]
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, errors.New("wal: bad varint")
		}
		p = p[n:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(p)) {
			return nil, errors.New("wal: truncated bytes")
		}
		b := p[:n]
		p = p[n:]
		return b, nil
	}
	switch r.Type {
	case recBatch:
		var err error
		if r.LSN, err = readUvarint(); err != nil {
			return Record{}, err
		}
		n, err := readUvarint()
		if err != nil {
			return Record{}, err
		}
		if n > uint64(len(p)) { // each write is >= 2 bytes
			return Record{}, errors.New("wal: write count exceeds payload")
		}
		r.Writes = make([]KV, 0, n)
		for i := uint64(0); i < n; i++ {
			key, err := readBytes()
			if err != nil {
				return Record{}, err
			}
			val, err := readVarint()
			if err != nil {
				return Record{}, err
			}
			r.Writes = append(r.Writes, KV{Key: string(key), Val: val})
		}
	case recAux:
		var err error
		if r.Seq, err = readUvarint(); err != nil {
			return Record{}, err
		}
		name, err := readBytes()
		if err != nil {
			return Record{}, err
		}
		r.Name = string(name)
		data, err := readBytes()
		if err != nil {
			return Record{}, err
		}
		r.Data = append([]byte(nil), data...)
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	if len(p) != 0 {
		return Record{}, errors.New("wal: trailing bytes in payload")
	}
	return r, nil
}

// encodeFrame wraps a payload in the [len][crc] frame.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame
}

// DecodeFrames parses a byte stream of frames, returning the records
// decoded before the first malformed frame and the number of bytes
// consumed. It never panics and never reads past the first bad length
// or CRC — the torn-tail contract (fuzzed by FuzzWALDecode).
func DecodeFrames(b []byte) (recs []Record, consumed int) {
	for {
		if len(b)-consumed < frameHeader {
			return recs, consumed
		}
		length := binary.LittleEndian.Uint32(b[consumed : consumed+4])
		if length == 0 || length > maxFrame {
			return recs, consumed
		}
		if uint64(len(b)-consumed-frameHeader) < uint64(length) {
			return recs, consumed
		}
		crc := binary.LittleEndian.Uint32(b[consumed+4 : consumed+8])
		payload := b[consumed+frameHeader : consumed+frameHeader+int(length)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, consumed
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, consumed
		}
		recs = append(recs, rec)
		consumed += frameHeader + int(length)
	}
}

// CrashPoint names a place where fault injection can act.
type CrashPoint int

const (
	// PointAppend fires before a record's frame is written: a crash here
	// loses the record entirely.
	PointAppend CrashPoint = iota
	// PointSync fires after frames are written but before fsync: a crash
	// here leaves records in the page cache (survives kill -9, lost on
	// power failure — the chaos harness treats it as the
	// "written-not-acknowledged" window).
	PointSync
	// PointTorn fires after a deliberately truncated frame has been
	// written and synced; a kill -9 hook dies here to leave a real torn
	// tail on disk.
	PointTorn
	// PointSnapshot fires after a snapshot temp file is written but
	// before the atomic rename publishes it.
	PointSnapshot
)

// String names the point (chaos specs and logs).
func (p CrashPoint) String() string {
	switch p {
	case PointAppend:
		return "wal-append"
	case PointSync:
		return "wal-sync"
	case PointTorn:
		return "wal-torn"
	case PointSnapshot:
		return "wal-snapshot"
	}
	return fmt.Sprintf("wal-point-%d", int(p))
}

// Action is a hook's verdict at a crash point.
type Action int

const (
	// ActContinue proceeds normally.
	ActContinue Action = iota
	// ActCrash makes the writer fail the operation with ErrCrashed
	// (in-process crash simulation; kill -9 hooks never return instead).
	ActCrash
	// ActTorn (meaningful at PointAppend) writes a truncated frame,
	// syncs it, then consults the hook again at PointTorn.
	ActTorn
)

// Hook is consulted at crash points. A kill -9 harness SIGKILLs the
// process inside Act; in-process tests return ActCrash and observe
// ErrCrashed.
type Hook interface {
	Act(p CrashPoint) Action
}

// ErrCrashed is returned once a hook has simulated a crash; the writer
// is dead from then on.
var ErrCrashed = errors.New("wal: crashed by fault injection")

// segInfo describes one sealed (no longer written) segment.
type segInfo struct {
	index  int
	path   string
	maxLSN uint64 // highest batch LSN in the segment
	maxSeq uint64 // highest aux seq in the segment
}

// Writer appends records to the active segment with group-commit fsync.
type Writer struct {
	dir      string
	segBytes int64
	window   time.Duration
	maxBatch int
	hook     Hook
	onSync   func(records int)

	mu     sync.Mutex
	f      *os.File
	index  int     // active segment index
	off    int64   // active segment size
	curLSN uint64  // highest batch LSN in active segment
	curSeq uint64  // highest aux seq in active segment
	sealed []segInfo
	cohort *cohort
	err    error // sticky fatal error

	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	closed bool
}

// cohort is one group of appenders waiting on a shared fsync.
type cohort struct {
	done chan struct{}
	err  error
	n    int
}

// Option configures a Writer.
type Option func(*Writer)

// WithSegmentBytes sets the rotation threshold (default 4 MiB).
func WithSegmentBytes(n int64) Option {
	return func(w *Writer) {
		if n > 0 {
			w.segBytes = n
		}
	}
}

// WithGroupCommit enables group-commit fsync. window > 0 turns cohort
// batching on: the background syncer fsyncs a cohort as soon as the
// previous fsync completes, so the accumulation window is the duration
// of the in-flight fsync rather than a timer (a sub-millisecond timer
// fires a scheduler tick late on Linux, which would put a ~1ms floor
// under every commit — slower than not batching at all on a fast
// device). The window's magnitude is therefore not a wait; it is kept
// as the driver-level on/off knob. maxBatch caps a cohort; the appender
// that fills a cohort syncs it inline. window <= 0 means fsync on every
// append (no batching).
func WithGroupCommit(window time.Duration, maxBatch int) Option {
	return func(w *Writer) {
		w.window = window
		if maxBatch > 0 {
			w.maxBatch = maxBatch
		}
	}
}

// WithHook installs a crash-point hook.
func WithHook(h Hook) Option {
	return func(w *Writer) { w.hook = h }
}

// WithSyncObserver installs a callback invoked after each fsync with the
// number of records it covered (metrics).
func WithSyncObserver(fn func(records int)) Option {
	return func(w *Writer) { w.onSync = fn }
}

// segPattern matches segment file names.
const segPattern = "wal-%08d.seg"

// segPath returns the path of segment i under dir.
func segPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, i))
}

// listSegments returns the segment files under dir sorted by index.
func listSegments(dir string) ([]segInfo, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, p := range names {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(p), segPattern, &i); err != nil {
			continue
		}
		segs = append(segs, segInfo{index: i, path: p})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].index < segs[b].index })
	return segs, nil
}

// Open creates a Writer over dir, starting a fresh active segment after
// any existing ones. It never appends to a pre-existing segment: a torn
// tail in the previous active segment then terminates only that
// segment's replay, and records written after the restart live in a
// clean file. Call Replay first to recover state.
func Open(dir string, opts ...Option) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{
		dir:      dir,
		segBytes: 4 << 20,
		maxBatch: 128,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(w)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if n := len(segs); n > 0 {
		next = segs[n-1].index + 1
		// Sealed segments from before this open: their stamps are read
		// lazily by PruneTo (which re-scans files), so leave them zeroed
		// here and mark them unknown with maxLSN = ^0.
		for i := range segs {
			segs[i].maxLSN = ^uint64(0)
			segs[i].maxSeq = ^uint64(0)
		}
		w.sealed = segs
	}
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	go w.syncLoop()
	return w, nil
}

// openSegment opens segment i as the active file. Caller holds w.mu or
// has exclusive access.
func (w *Writer) openSegment(i int) error {
	f, err := os.OpenFile(segPath(w.dir, i), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil { // make the creation itself durable
		f.Close()
		return err
	}
	w.f = f
	w.index = i
	w.off = 0
	w.curLSN = 0
	w.curSeq = 0
	return nil
}

// rotateLocked seals the active segment and opens the next one. The old
// file is fsynced before closing so a cohort spanning the rotation is
// durable once the post-rotation fsync returns.
func (w *Writer) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, segInfo{
		index:  w.index,
		path:   segPath(w.dir, w.index),
		maxLSN: w.curLSN,
		maxSeq: w.curSeq,
	})
	return w.openSegment(w.index + 1)
}

// Append writes one record and returns once it is durable (fsynced),
// possibly sharing the fsync with a cohort of concurrent appenders.
func (w *Writer) Append(rec Record) error {
	frame := encodeFrame(encodePayload(rec))
	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = errors.New("wal: writer closed")
		}
		return err
	}
	if w.hook != nil {
		switch w.hook.Act(PointAppend) {
		case ActCrash:
			w.err = ErrCrashed
			w.mu.Unlock()
			return ErrCrashed
		case ActTorn:
			// Write a deliberately truncated frame and make it reach the
			// file, then give the hook its chance to kill the process on
			// top of a real torn tail.
			cut := frameHeader + (len(frame)-frameHeader)/2
			if cut >= len(frame) && len(frame) > 0 {
				cut = len(frame) - 1
			}
			if _, err := w.f.Write(frame[:cut]); err != nil {
				w.err = err
				w.mu.Unlock()
				return err
			}
			if err := w.f.Sync(); err != nil {
				w.err = err
				w.mu.Unlock()
				return err
			}
			w.hook.Act(PointTorn)
			w.err = ErrCrashed
			w.mu.Unlock()
			return ErrCrashed
		}
	}
	if w.off >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			w.mu.Unlock()
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.off += int64(len(frame))
	switch rec.Type {
	case recBatch:
		if rec.LSN > w.curLSN {
			w.curLSN = rec.LSN
		}
	case recAux:
		if rec.Seq > w.curSeq {
			w.curSeq = rec.Seq
		}
	}
	if w.window <= 0 {
		// Sync-per-append mode.
		err := w.syncLocked(1)
		w.mu.Unlock()
		return err
	}
	c := w.cohort
	if c == nil {
		c = &cohort{done: make(chan struct{})}
		w.cohort = c
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	c.n++
	full := c.n >= w.maxBatch
	w.mu.Unlock()
	if full {
		w.syncCohort()
	}
	<-c.done
	return c.err
}

// syncLocked consults the pre-fsync crash point and fsyncs the active
// file. Caller holds w.mu.
func (w *Writer) syncLocked(records int) error {
	if w.hook != nil && w.hook.Act(PointSync) == ActCrash {
		w.err = ErrCrashed
		return ErrCrashed
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	if w.onSync != nil {
		w.onSync(records)
	}
	return nil
}

// syncCohort detaches the current cohort and fsyncs on its behalf. All
// of a cohort's frames are already in the file: members write under
// w.mu before joining, and rotation fsyncs the old file, so one fsync
// of the active file covers the whole group. The fsync itself runs
// OUTSIDE w.mu — appenders keep writing frames and joining the next
// cohort while this one's fsync is in flight, which is where the
// group-commit batching actually comes from (holding the mutex across
// the fsync serializes appends behind it and collapses every cohort to
// one or two records).
func (w *Writer) syncCohort() {
	w.mu.Lock()
	c := w.cohort
	w.cohort = nil
	if c == nil {
		w.mu.Unlock()
		return
	}
	if w.err != nil {
		c.err = w.err
		w.mu.Unlock()
		close(c.done)
		return
	}
	if w.hook != nil && w.hook.Act(PointSync) == ActCrash {
		w.err = ErrCrashed
		c.err = ErrCrashed
		w.mu.Unlock()
		close(c.done)
		return
	}
	f := w.f
	w.mu.Unlock()

	err := f.Sync()

	w.mu.Lock()
	if err != nil && w.f != f && w.err == nil {
		// The active segment rotated while the fsync was in flight:
		// rotateLocked fsyncs the outgoing file before closing it, so the
		// cohort's frames are already durable and the error is just a
		// sync racing the close of a stale handle.
		err = nil
	}
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if w.onSync != nil {
		w.onSync(c.n)
	}
	w.mu.Unlock()
	c.err = err
	close(c.done)
}

// syncLoop is the group-commit syncer: each kick syncs whatever cohort
// accumulated, immediately. Cohort creation always sends (or leaves
// pending) a kick, so no cohort is stranded; appends that land while a
// sync is in flight join the next cohort, which is the whole batching
// effect.
func (w *Writer) syncLoop() {
	defer close(w.done)
	for {
		select {
		case <-w.kick:
		case <-w.stop:
			w.syncCohort()
			return
		}
		// Let every runnable appender write its frame and join the cohort
		// before detaching it. On a loaded (or single-core) machine the
		// syncer can otherwise wake ahead of the appenders released by the
		// previous sync and detach a cohort of one; a single yield costs
		// nanoseconds and routinely multiplies the records per fsync.
		runtime.Gosched()
		w.syncCohort()
	}
}

// Sync forces an fsync of everything appended so far.
func (w *Writer) Sync() error {
	w.syncCohort()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		return w.err
	}
	return w.f.Sync()
}

// LastLSN returns the highest batch LSN appended to the active segment.
func (w *Writer) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.curLSN
}

// SegmentCount returns sealed+active segment counts (tests, metrics).
func (w *Writer) SegmentCount() (sealed, total int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed), len(w.sealed) + 1
}

// LogBytes returns the total size of all segment files.
func (w *Writer) LogBytes() int64 {
	w.mu.Lock()
	segs := append([]segInfo(nil), w.sealed...)
	active := w.off
	w.mu.Unlock()
	total := active
	for _, s := range segs {
		if fi, err := os.Stat(s.path); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Rotate seals the active segment (so PruneTo can consider it) and
// starts a new one. Checkpoint uses it before pruning.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		return w.err
	}
	if w.off == 0 {
		return nil // empty active segment: nothing to seal
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// PruneTo deletes sealed segments whose every record is covered by a
// snapshot at (snapLSN, auxSeq): maxLSN <= snapLSN and maxSeq <= auxSeq.
// Segments with unknown stamps (sealed before this process opened the
// log) are scanned on demand. Returns the number of files removed.
func (w *Writer) PruneTo(snapLSN, auxSeq uint64) (int, error) {
	w.mu.Lock()
	segs := append([]segInfo(nil), w.sealed...)
	w.mu.Unlock()

	removed := 0
	var keep []segInfo
	for _, s := range segs {
		if s.maxLSN == ^uint64(0) { // unknown: scan the file
			maxLSN, maxSeq, err := scanStamps(s.path)
			if err != nil {
				keep = append(keep, s)
				continue
			}
			s.maxLSN, s.maxSeq = maxLSN, maxSeq
		}
		if s.maxLSN <= snapLSN && s.maxSeq <= auxSeq {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				keep = append(keep, s)
				continue
			}
			removed++
		} else {
			keep = append(keep, s)
		}
	}
	w.mu.Lock()
	// Concurrent rotations may have sealed more segments meanwhile; keep
	// any not in our scanned set.
	have := make(map[int]bool, len(keep))
	for _, s := range keep {
		have[s.index] = true
	}
	for _, s := range segs {
		have[s.index] = true // scanned (kept or removed)
	}
	for _, s := range w.sealed {
		if !have[s.index] {
			keep = append(keep, s)
		}
	}
	sort.Slice(keep, func(a, b int) bool { return keep[a].index < keep[b].index })
	w.sealed = keep
	w.mu.Unlock()
	return removed, nil
}

// scanStamps reads a sealed segment and returns its max batch LSN and
// aux seq.
func scanStamps(path string) (maxLSN, maxSeq uint64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	recs, _ := DecodeFrames(b)
	for _, r := range recs {
		if r.IsBatch() && r.LSN > maxLSN {
			maxLSN = r.LSN
		}
		if r.IsAux() && r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	return maxLSN, maxSeq, nil
}

// Close flushes and closes the writer.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if w.err == nil {
			w.f.Sync()
		}
		return w.f.Close()
	}
	return nil
}
