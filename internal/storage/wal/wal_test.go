package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "x", Val: 10}, {Key: "y", Val: -3}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(AuxRecord(1, "queues", []byte("blob-1"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(2, []KV{{Key: "x", Val: 11}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(AuxRecord(2, "queues", []byte("blob-2"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 || res.Batches[0].LSN != 1 || res.Batches[1].LSN != 2 {
		t.Fatalf("batches = %+v", res.Batches)
	}
	if got := res.Batches[0].Writes; len(got) != 2 || got[0] != (KV{"x", 10}) || got[1] != (KV{"y", -3}) {
		t.Errorf("batch 1 writes = %+v", got)
	}
	if aux := res.Aux["queues"]; string(aux.Data) != "blob-2" || aux.Seq != 2 {
		t.Errorf("aux = %+v, want newest blob", aux)
	}
	if res.TornBytes != 0 {
		t.Errorf("torn bytes = %d on a clean log", res.TornBytes)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "a", Val: 1}})); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, w.index)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail: append half of a valid frame.
	frame := encodeFrame(encodePayload(BatchRecord(2, []KV{{Key: "b", Val: 2}})))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || res.Batches[0].LSN != 1 {
		t.Fatalf("batches after torn tail = %+v, want only LSN 1", res.Batches)
	}
	if res.TornBytes != int64(len(frame)/2) {
		t.Errorf("torn bytes = %d, want %d", res.TornBytes, len(frame)/2)
	}
}

func TestReplayContinuesPastTornSealedSegment(t *testing.T) {
	// A crash leaves a torn tail in the then-active segment; the restarted
	// writer appends to a fresh segment. Replay must drop only the torn
	// record and still read the newer segment.
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "a", Val: 1}})); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, w.index)
	w.Close()
	frame := encodeFrame(encodePayload(BatchRecord(2, []KV{{Key: "lost", Val: 9}})))
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(frame[:len(frame)-3])
	f.Close()

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(BatchRecord(3, []KV{{Key: "c", Val: 3}})); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 || res.Batches[0].LSN != 1 || res.Batches[1].LSN != 3 {
		t.Fatalf("batches = %+v, want LSNs 1 and 3", res.Batches)
	}
}

func TestGroupCommitManyAppenders(t *testing.T) {
	dir := t.TempDir()
	syncs := 0
	var mu sync.Mutex
	w, err := Open(dir,
		WithGroupCommit(2*time.Millisecond, 64),
		WithSyncObserver(func(n int) {
			mu.Lock()
			syncs++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Append(BatchRecord(uint64(i+1), []KV{{Key: "k", Val: int64(i)}}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	w.Close()
	mu.Lock()
	if syncs >= n {
		t.Errorf("group commit did %d fsyncs for %d appends; expected batching", syncs, n)
	}
	mu.Unlock()
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != n {
		t.Errorf("replayed %d batches, want %d", len(res.Batches), n)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := w.Append(BatchRecord(uint64(i), []KV{{Key: "key-with-some-length", Val: int64(i)}})); err != nil {
			t.Fatal(err)
		}
	}
	sealed, _ := w.SegmentCount()
	if sealed < 2 {
		t.Fatalf("sealed segments = %d, want rotation to have happened", sealed)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	removed, err := w.PruneTo(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("prune removed nothing despite covered segments")
	}
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Batches {
		if b.LSN > 20 {
			continue
		}
	}
	// Every surviving batch above the prune point must still be present.
	seen := map[uint64]bool{}
	for _, b := range res.Batches {
		seen[b.LSN] = true
	}
	for lsn := uint64(21); lsn <= 40; lsn++ {
		if !seen[lsn] {
			t.Errorf("batch LSN %d lost by pruning", lsn)
		}
	}
	w.Close()
}

func TestPruneRespectsAuxSeq(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithSegmentBytes(1)) // rotate on every append
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "a", Val: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(AuxRecord(5, "queues", []byte("newest"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Snapshot covers LSN 1 but only aux seq 4: the aux segment must stay.
	if _, err := w.PruneTo(1, 4); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Aux["queues"].Data) != "newest" {
		t.Error("pruning dropped an aux record newer than the snapshot's aux cut")
	}
	w.Close()
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := Snapshot{
		LSN:    42,
		AuxSeq: 7,
		State:  map[string]int64{"x": 10, "__applied/3/0": 1},
		Aux:    map[string][]byte{"queues": []byte("qstate")},
	}
	if err := WriteSnapshot(dir, snap, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot ok=%v err=%v", ok, err)
	}
	if got.LSN != 42 || got.AuxSeq != 7 || got.State["x"] != 10 || string(got.Aux["queues"]) != "qstate" {
		t.Errorf("snapshot round trip = %+v", got)
	}
}

func TestLoadSnapshotIgnoresCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, Snapshot{LSN: 1, State: map[string]int64{"x": 1}}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadSnapshot(dir); ok || err != nil {
		t.Errorf("corrupt snapshot: ok=%v err=%v, want absent", ok, err)
	}
}

// stepHook crashes (or tears) at the nth consultation of a point.
type stepHook struct {
	mu     sync.Mutex
	point  CrashPoint
	hits   int
	at     int
	action Action
	fired  bool
}

func (h *stepHook) Act(p CrashPoint) Action {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p != h.point || h.fired {
		return ActContinue
	}
	h.hits++
	if h.hits >= h.at {
		h.fired = true
		return h.action
	}
	return ActContinue
}

func TestCrashAtAppendLosesRecord(t *testing.T) {
	dir := t.TempDir()
	h := &stepHook{point: PointAppend, at: 2, action: ActCrash}
	w, err := Open(dir, WithHook(h))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "a", Val: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(2, []KV{{Key: "b", Val: 2}})); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append at crash point: %v, want ErrCrashed", err)
	}
	// Writer is dead from now on.
	if err := w.Append(BatchRecord(3, nil)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: %v, want sticky ErrCrashed", err)
	}
	w.Close()
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || res.Batches[0].LSN != 1 {
		t.Fatalf("batches = %+v, want only the pre-crash record", res.Batches)
	}
}

func TestTornInjectionLeavesTruncatedFrame(t *testing.T) {
	dir := t.TempDir()
	h := &stepHook{point: PointAppend, at: 2, action: ActTorn}
	w, err := Open(dir, WithHook(h))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(1, []KV{{Key: "a", Val: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BatchRecord(2, []KV{{Key: "torn-away-record", Val: 2}})); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn append: %v, want ErrCrashed", err)
	}
	w.Close()
	res, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("batches = %+v, want torn record dropped", res.Batches)
	}
	if res.TornBytes == 0 {
		t.Error("expected torn bytes on disk after torn injection")
	}
}

func TestDecodeFramesStopsAtBadCRC(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(encodeFrame(encodePayload(BatchRecord(1, []KV{{Key: "a", Val: 1}}))))
	bad := encodeFrame(encodePayload(BatchRecord(2, []KV{{Key: "b", Val: 2}})))
	bad[frameHeader] ^= 0xff // corrupt payload, CRC now wrong
	buf.Write(bad)
	buf.Write(encodeFrame(encodePayload(BatchRecord(3, []KV{{Key: "c", Val: 3}}))))

	recs, consumed := DecodeFrames(buf.Bytes())
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("recs = %+v, want decode to stop at the bad CRC", recs)
	}
	if consumed >= buf.Len() {
		t.Error("consumed past the corrupt frame")
	}
}

func TestDecodeFramesRejectsAbsurdLength(t *testing.T) {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint32(b[0:4], 1<<31)
	recs, consumed := DecodeFrames(b)
	if len(recs) != 0 || consumed != 0 {
		t.Errorf("absurd length decoded: %d recs, %d consumed", len(recs), consumed)
	}
}
