// Package tdc implements timestamp-ordering divergence control — the
// third DC family described in the paper's reference [12] (Wu, Yu, Pu),
// alongside the lock-based (package dc) and optimistic (package odc)
// engines.
//
// Classic timestamp ordering assigns every transaction a start timestamp
// and rejects operations that would contradict timestamp order. The ESR
// twist relaxes the read rules for query ETs:
//
//   - An update ET obeys strict TO against other updates: reading a key
//     whose update-write timestamp is newer, or writing a key whose
//     update read/write timestamp is newer, aborts the transaction,
//     which retries with a fresh (larger) timestamp. Update ETs thus
//     stay serializable among themselves.
//   - A query ET may read a key even though writes with larger
//     timestamps already committed ("reading the past out of order") —
//     importing the sum of those writes' declared bounds, checked
//     against its import limit.
//   - An update ET may write a key that a later-timestamped query
//     already read ("writing under a read") — exporting its declared
//     bound, checked against its export limit.
//
// Writes are buffered and installed at commit after revalidation, so
// aborts have no effects and there are no dirty reads.
package tdc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ErrTimestamp is the system abort for timestamp-order violations; the
// caller retries with a fresh timestamp.
var ErrTimestamp = errors.New("tdc: timestamp order violated")

// Retryable reports whether err is a timestamp abort worth retrying.
func Retryable(err error) bool { return errors.Is(err, ErrTimestamp) }

// recentWrite records one committed update write for pricing stale reads.
type recentWrite struct {
	ts    int64
	bound metric.Limit
}

// keyState is the per-key timestamp bookkeeping.
type keyState struct {
	updateRTS int64 // max read timestamp among update ETs
	updateWTS int64 // max committed write timestamp
	queryRTS  int64 // max read timestamp among query ETs
	// recent holds committed writes newer than the oldest active
	// transaction, pricing out-of-order query reads.
	recent []recentWrite
}

// Stats counts engine events.
type Stats struct {
	Commits  uint64
	Aborts   uint64 // timestamp violations
	Absorbed uint64 // ε-absorbed out-of-order operations
}

// Engine is the timestamp-ordering divergence-control executor.
type Engine struct {
	store   *storage.Store
	obs     txn.Observer
	opDelay time.Duration
	step    txn.StepHook

	mu     sync.Mutex
	clock  int64
	keys   map[storage.Key]*keyState
	active map[lock.Owner]int64
	stats  Stats
}

// NewEngine builds an engine over store; obs may be nil.
func NewEngine(store *storage.Store, obs txn.Observer) *Engine {
	return &Engine{
		store:  store,
		obs:    obs,
		keys:   make(map[storage.Key]*keyState),
		active: make(map[lock.Owner]int64),
	}
}

// SetOpDelay simulates per-operation work outside the critical sections.
func (e *Engine) SetOpDelay(d time.Duration) { e.opDelay = d }

// SetStepHook installs a step hook consulted before every operation's
// timestamp admission and before the install critical section. Nil (the
// default) disables gating.
func (e *Engine) SetStepHook(h txn.StepHook) { e.step = h }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// key returns (creating) the state for k; callers hold e.mu.
func (e *Engine) key(k storage.Key) *keyState {
	ks := e.keys[k]
	if ks == nil {
		ks = &keyState{}
		e.keys[k] = ks
	}
	return ks
}

// gcLocked trims recent-write lists below the oldest active timestamp.
func (e *Engine) gcLocked() {
	min := e.clock
	for _, ts := range e.active {
		if ts < min {
			min = ts
		}
	}
	for k, ks := range e.keys {
		keep := ks.recent[:0]
		for _, rw := range ks.recent {
			if rw.ts > min {
				keep = append(keep, rw)
			}
		}
		ks.recent = keep
		if len(ks.recent) == 0 && ks.updateRTS == 0 && ks.updateWTS == 0 && ks.queryRTS == 0 {
			delete(e.keys, k)
		}
	}
}

// Run executes p once under the given ε-spec and class, returning the
// outcome plus imported fuzziness. ErrTimestamp aborts are retryable;
// rollback statements return txn.ErrRollback.
func (e *Engine) Run(
	ctx context.Context,
	owner lock.Owner,
	p *txn.Program,
	spec metric.Spec,
	class txn.Class,
) (*txn.Outcome, metric.Fuzz, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if e.obs != nil {
		e.obs.Begin(owner, p.Name, class)
	}
	e.mu.Lock()
	e.clock++
	ts := e.clock
	e.active[owner] = ts
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.active, owner)
		e.gcLocked()
		e.mu.Unlock()
	}()

	out := &txn.Outcome{Owner: owner}
	var (
		imported metric.Fuzz
		exported metric.Fuzz
		writes   []txn.Op
		values   = make(map[storage.Key]metric.Value) // buffered writes
	)
	abort := func(format string, args ...any) (*txn.Outcome, metric.Fuzz, error) {
		e.mu.Lock()
		e.stats.Aborts++
		e.mu.Unlock()
		if e.obs != nil {
			e.obs.Abort(owner, ErrTimestamp)
		}
		return out, 0, fmt.Errorf(format+": %w", append(args, ErrTimestamp)...)
	}

	for i, op := range p.Ops {
		if e.step != nil {
			e.step.OnStep(txn.Step{
				Owner: owner, Program: p.Name, Op: i, Kind: txn.StepApply,
				Key: op.Key, Write: op.Kind == txn.OpWrite,
			})
		}
		if e.opDelay > 0 {
			txn.SimWork(e.opDelay)
		}
		// Read the current value (own buffered write wins).
		cur, buffered := values[op.Key]
		if !buffered {
			cur = e.store.Get(op.Key)
		}
		// Timestamp admission per op.
		e.mu.Lock()
		ks := e.key(op.Key)
		switch {
		case op.Kind == txn.OpRead && class == txn.Query, op.Kind == txn.OpWrite && class == txn.Query:
			// Query read (queries have no writes in our environment, but
			// a query-classed piece could carry bounded writes; treat any
			// query access as a read for TO purposes).
			var charge metric.Fuzz
			unpriceable := false
			for _, rw := range ks.recent {
				if rw.ts > ts {
					if rw.bound.IsInfinite() {
						unpriceable = true
						break
					}
					charge = charge.Add(rw.bound.Bound())
				}
			}
			if unpriceable || !spec.Import.Allows(imported.Add(charge)) {
				e.mu.Unlock()
				return abort("tdc: stale read of %q too expensive", op.Key)
			}
			if charge > 0 {
				imported = imported.Add(charge)
				e.stats.Absorbed++
			}
			if ts > ks.queryRTS {
				ks.queryRTS = ts
			}
		case op.Kind == txn.OpRead:
			// Update-class read: strict TO against committed writes.
			if ts < ks.updateWTS {
				e.mu.Unlock()
				return abort("tdc: late read of %q", op.Key)
			}
			if ts > ks.updateRTS {
				ks.updateRTS = ts
			}
		case op.Kind == txn.OpWrite:
			// Update write: strict TO against update reads/writes.
			if ts < ks.updateRTS || ts < ks.updateWTS {
				e.mu.Unlock()
				return abort("tdc: late write of %q", op.Key)
			}
			// Writing under a later query read exports fuzziness.
			if ts < ks.queryRTS {
				if op.Bound.IsInfinite() || !spec.Export.Allows(exported.Add(op.Bound.Bound())) {
					e.mu.Unlock()
					return abort("tdc: write under query read of %q too expensive", op.Key)
				}
				exported = exported.Add(op.Bound.Bound())
				e.stats.Absorbed++
			}
		}
		e.mu.Unlock()

		if op.AbortIf != nil && op.AbortIf(cur) {
			if e.obs != nil {
				e.obs.Abort(owner, txn.ErrRollback)
			}
			return out, 0, fmt.Errorf("op on %q: %w", op.Key, txn.ErrRollback)
		}
		switch op.Kind {
		case txn.OpRead:
			out.Reads = append(out.Reads, txn.ReadRec{Key: op.Key, Value: cur})
			if e.obs != nil {
				e.obs.Read(owner, op.Key, cur)
			}
		case txn.OpWrite:
			values[op.Key] = op.Update(cur)
			writes = append(writes, op)
		}
	}

	// Install: revalidate write timestamps, then apply atomically.
	if e.step != nil {
		e.step.OnStep(txn.Step{Owner: owner, Program: p.Name, Op: -1, Kind: txn.StepCommit})
	}
	e.mu.Lock()
	for _, op := range writes {
		ks := e.key(op.Key)
		if ts < ks.updateRTS || ts < ks.updateWTS {
			e.stats.Aborts++
			e.mu.Unlock()
			if e.obs != nil {
				e.obs.Abort(owner, ErrTimestamp)
			}
			return out, 0, fmt.Errorf("tdc: install conflict on %q: %w", op.Key, ErrTimestamp)
		}
	}
	batch := make([]storage.Write, 0, len(values))
	for _, op := range writes {
		ks := e.key(op.Key)
		old := e.store.Get(op.Key)
		val := values[op.Key]
		if op.Commutative {
			// Re-derive increments against the committed value so that
			// concurrently committed adds compose.
			val = op.Update(old)
			values[op.Key] = val
		}
		e.store.Set(op.Key, val)
		ks.updateWTS = ts
		ks.recent = append(ks.recent, recentWrite{ts: ts, bound: op.Bound})
		if e.obs != nil {
			e.obs.Write(owner, op.Key, old, val, op.Commutative)
		}
	}
	for k, v := range values {
		batch = append(batch, storage.Write{Key: k, Value: v})
	}
	if err := e.store.Apply(batch); err != nil {
		e.mu.Unlock()
		return out, 0, err
	}
	e.stats.Commits++
	e.mu.Unlock()

	out.Writes = batch
	out.Committed = true
	if e.obs != nil {
		e.obs.Commit(owner)
	}
	return out, imported, nil
}
