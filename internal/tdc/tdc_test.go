package tdc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func newEngineT(init map[storage.Key]metric.Value) *Engine {
	return NewEngine(storage.NewFrom(init), nil)
}

// mustRun retries timestamp aborts until commit.
func mustRun(t *testing.T, e *Engine, base lock.Owner, p *txn.Program, spec metric.Spec, class txn.Class) *txn.Outcome {
	t.Helper()
	owner := base
	for {
		out, _, err := e.Run(context.Background(), owner, p, spec, class)
		if err == nil {
			return out
		}
		if !Retryable(err) {
			t.Fatalf("run %s: %v", p.Name, err)
		}
		owner++
	}
}

func TestCommitSimpleTransfer(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "y": 0})
	p := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	out := mustRun(t, e, 1, p, metric.Strict, txn.Update)
	if !out.Committed {
		t.Fatal("not committed")
	}
	if e.store.Get("x") != 900 || e.store.Get("y") != 100 {
		t.Errorf("state: x=%d y=%d", e.store.Get("x"), e.store.Get("y"))
	}
	if st := e.Stats(); st.Commits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSequentialUpdatesOrdered(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	set1 := txn.MustProgram("set1", txn.SetOp("x", 1))
	set2 := txn.MustProgram("set2", txn.SetOp("x", 2))
	mustRun(t, e, 1, set1, metric.Strict, txn.Update)
	mustRun(t, e, 100, set2, metric.Strict, txn.Update)
	if got := e.store.Get("x"); got != 2 {
		t.Errorf("x = %d, want 2 (timestamp order)", got)
	}
}

func TestRollbackHasNoEffects(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 50})
	p := txn.MustProgram("w",
		txn.AddOp("staging", 1),
		txn.WithAbortIf(txn.AddOp("x", -100), func(v metric.Value) bool { return v < 100 }),
	)
	_, _, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if !errors.Is(err, txn.ErrRollback) {
		t.Fatalf("err = %v", err)
	}
	if e.store.Has("staging") {
		t.Error("buffered write leaked")
	}
}

func TestQueryReadsStaleWithinBudget(t *testing.T) {
	// An "old" query (small timestamp) reading keys written by newer
	// updates must charge the writers' bounds against its import limit.
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000})

	// Start the query first (older timestamp), pause it mid-flight.
	started := make(chan struct{})
	release := make(chan struct{})
	slowQuery := txn.MustProgram("q",
		txn.Op{Kind: txn.OpRead, Key: "pause", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
		txn.ReadOp("x"),
	)
	type qres struct {
		imported metric.Fuzz
		err      error
	}
	res := make(chan qres, 1)
	go func() {
		_, imported, err := e.Run(context.Background(), 10, slowQuery,
			metric.Spec{Import: metric.LimitOf(100), Export: metric.Zero}, txn.Query)
		res <- qres{imported, err}
	}()
	<-started
	// A newer update writes x (bound 100) and commits.
	upd := txn.MustProgram("upd", txn.AddOp("x", -100))
	mustRun(t, e, 20, upd, metric.SpecOf(1000), txn.Update)
	close(release)
	r := <-res
	if r.err != nil {
		t.Fatalf("query: %v", r.err)
	}
	if r.imported != 100 {
		t.Errorf("imported = %d, want 100", r.imported)
	}
	if got := e.Stats().Absorbed; got == 0 {
		t.Error("no absorption recorded")
	}
}

func TestQueryAbortsBeyondImportBudget(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000})
	started := make(chan struct{})
	release := make(chan struct{})
	slowQuery := txn.MustProgram("q",
		txn.Op{Kind: txn.OpRead, Key: "pause", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
		txn.ReadOp("x"),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 10, slowQuery,
			metric.Spec{Import: metric.LimitOf(50), Export: metric.Zero}, txn.Query)
		errCh <- err
	}()
	<-started
	upd := txn.MustProgram("upd", txn.AddOp("x", -100))
	mustRun(t, e, 20, upd, metric.SpecOf(1000), txn.Update)
	close(release)
	if err := <-errCh; !Retryable(err) {
		t.Fatalf("err = %v, want timestamp abort", err)
	}
}

func TestWriteUnderQueryReadExports(t *testing.T) {
	// The query reads x with a NEWER timestamp than the update that then
	// writes x: the update exports its bound.
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "pause": 0})

	// Update starts first (older ts) and pauses before writing x.
	started := make(chan struct{})
	release := make(chan struct{})
	slowUpd := txn.MustProgram("slowupd",
		txn.Op{Kind: txn.OpRead, Key: "pause", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
		txn.AddOp("x", -100),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 10, slowUpd,
			metric.Spec{Import: metric.Zero, Export: metric.LimitOf(100)}, txn.Update)
		errCh <- err
	}()
	<-started
	// A newer query reads x.
	q := txn.MustProgram("q", txn.ReadOp("x"))
	mustRun(t, e, 20, q, metric.SpecOf(1000), txn.Query)
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("update with export budget: %v", err)
	}
	// Same shape with zero export budget → abort.
	started2 := make(chan struct{})
	release2 := make(chan struct{})
	slowUpd2 := txn.MustProgram("slowupd2",
		txn.Op{Kind: txn.OpRead, Key: "pause", AbortIf: func(metric.Value) bool {
			close(started2)
			<-release2
			return false
		}},
		txn.AddOp("x", -100),
	)
	errCh2 := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 30, slowUpd2, metric.Strict, txn.Update)
		errCh2 <- err
	}()
	<-started2
	mustRun(t, e, 40, q, metric.SpecOf(1000), txn.Query)
	close(release2)
	if err := <-errCh2; !Retryable(err) {
		t.Fatalf("err = %v, want timestamp abort (no export budget)", err)
	}
}

func TestLateUpdateReadAborts(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0, "pause": 0})
	started := make(chan struct{})
	release := make(chan struct{})
	slowReader := txn.MustProgram("slowreader",
		txn.Op{Kind: txn.OpRead, Key: "pause", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
		txn.ReadOp("x"),
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 10, slowReader, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	// A newer update writes x first.
	mustRun(t, e, 20, txn.MustProgram("w", txn.SetOp("x", 9)), metric.Strict, txn.Update)
	close(release)
	if err := <-errCh; !Retryable(err) {
		t.Fatalf("late read err = %v, want timestamp abort", err)
	}
}

func TestConcurrentAddsAllApply(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				owner := lock.Owner(i*100000 + j*100)
				for {
					_, _, err := e.Run(context.Background(), owner, p, metric.Strict, txn.Update)
					if err == nil {
						break
					}
					if !Retryable(err) {
						t.Errorf("inc: %v", err)
						return
					}
					owner++
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x"); got != 320 {
		t.Errorf("x = %d, want 320 (no lost increments)", got)
	}
}

func TestGCTrimsRecentWrites(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	for i := 0; i < 50; i++ {
		mustRun(t, e, lock.Owner(1000+i*10), p, metric.Strict, txn.Update)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, ks := range e.keys {
		if len(ks.recent) > 1 {
			t.Errorf("key %s retains %d recent writes after quiescence", k, len(ks.recent))
		}
	}
}

func TestInvalidProgramAndContext(t *testing.T) {
	e := newEngineT(nil)
	if _, _, err := e.Run(context.Background(), 1, &txn.Program{Name: "bad"}, metric.Strict, txn.Query); err == nil {
		t.Error("invalid program accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := txn.MustProgram("t", txn.ReadOp("x"))
	if _, _, err := e.Run(ctx, 1, p, metric.Strict, txn.Query); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMixedWorkloadConservesMoney(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 100000, "y": 100000})
	xfer := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("x"), txn.ReadOp("y"))
	spec := metric.SpecOf(10000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				owner := lock.Owner(i*1000000 + j*1000)
				p, class := xfer, txn.Update
				if i%2 == 0 {
					p, class = audit, txn.Query
				}
				for {
					out, _, err := e.Run(context.Background(), owner, p, spec, class)
					if err == nil {
						if class == txn.Query {
							if dev := metric.Distance(out.SumReads(), 200000); dev > 10000 {
								t.Errorf("deviation %d > ε", dev)
							}
						}
						break
					}
					if !Retryable(err) {
						t.Errorf("run: %v", err)
						return
					}
					owner++
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x") + e.store.Get("y"); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
}
