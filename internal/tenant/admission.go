package tenant

import (
	"sync"
	"time"
)

// bucket is a token bucket with an injectable clock. Both admission
// limits are instances of it: the request bucket meters admitted
// submissions per second, and the ε bucket meters fuzziness spent per
// second on the degraded read path — the paper's divergence bound
// recast as a refillable budget.
//
// rate <= 0 means unlimited: take always succeeds.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	if rate <= 0 {
		return nil // unlimited: nil receiver, take is a no-op success
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take refills from the clock and consumes n tokens if available.
// A nil bucket is the unlimited bucket. n == 0 always succeeds (a free
// degraded read does not draw down the ε budget).
func (b *bucket) take(now time.Time, n float64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if d := now.Sub(b.last); d > 0 {
		b.tokens += d.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// refund returns tokens taken for work that was not performed (the
// enqueue lost a race for the last mailbox slot). Capped at burst so a
// refund can never mint capacity.
func (b *bucket) refund(n float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
