package tenant

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// Property: whatever the interleaving of takes, refunds, and clock
// advances, a bucket never grants more than rate·elapsed + burst net
// tokens, at every prefix of the sequence. This is the admission
// guarantee the perf gates lean on, so it is pinned as a randomized
// invariant, not a couple of examples.
func TestBucketNeverExceedsRatePlusBurst(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rate := 1 + rng.Float64()*999 // tokens/sec
		burst := 1 + rng.Float64()*49
		start := time.Unix(0, 0)
		b := newBucket(rate, burst, start)

		now := start
		var granted, refunded float64
		for step := 0; step < 2000; step++ {
			switch rng.Intn(4) {
			case 0: // advance the clock a little
				now = now.Add(time.Duration(rng.Intn(5000)) * time.Microsecond)
			case 1: // refund a fraction of what was really taken
				if out := granted - refunded; out > 0 {
					n := out * rng.Float64()
					b.refund(n)
					refunded += n
				}
			default:
				n := rng.Float64() * 3
				if b.take(now, n) {
					granted += n
				}
			}
			elapsed := now.Sub(start).Seconds()
			// +1e-6 absorbs float accumulation across 2000 steps.
			if max := rate*elapsed + burst + 1e-6; granted-refunded > max {
				t.Fatalf("seed %d step %d: net granted %.3f > rate·t+burst %.3f",
					seed, step, granted-refunded, max)
			}
		}
	}
}

func TestBucketRefundNeverMintsCapacity(t *testing.T) {
	start := time.Unix(0, 0)
	b := newBucket(10, 5, start)
	if !b.take(start, 5) {
		t.Fatal("burst take failed")
	}
	b.refund(100) // way more than was taken: must cap at burst
	if !b.take(start, 5) {
		t.Error("refunded tokens up to burst must be takeable")
	}
	if b.take(start, 0.1) {
		t.Error("refund minted capacity beyond burst")
	}
}

func TestBucketUnlimitedAndZeroCharge(t *testing.T) {
	if b := newBucket(0, 10, time.Unix(0, 0)); b != nil {
		t.Fatal("rate 0 must yield the nil (unlimited) bucket")
	}
	var b *bucket
	for i := 0; i < 100; i++ {
		if !b.take(time.Unix(0, 0), 1e9) {
			t.Fatal("nil bucket must always grant")
		}
	}
	b.refund(1) // must not panic
	// A zero-cost take (a free degraded read under an infinite import
	// bound) succeeds even on an empty metered bucket.
	m := newBucket(1, 1, time.Unix(0, 0))
	m.take(time.Unix(0, 0), 1)
	if !m.take(time.Unix(0, 0), 0) {
		t.Error("zero-cost take on an empty bucket must succeed")
	}
}

// Serving-layer view of the same property: over any submission burst
// against a frozen clock, admitted count never exceeds the burst, and
// refills track the clock, not the attempt count.
func TestServeAdmissionBoundedByBucket(t *testing.T) {
	tc := testTenant("t0", 0)
	tc.Rate, tc.Burst = 100, 3
	now, advance := frozenClock()
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }, Now: now}, []Tenant{tc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	admitted := func(tries int) int {
		n := 0
		for i := 0; i < tries; i++ {
			_, err := s.Submit(ctx, "t0", 0) // update: admit or shed, never degrade
			switch {
			case err == nil:
				n++
			case errors.Is(err, ErrShed):
			default:
				t.Fatalf("submit: %v", err)
			}
		}
		return n
	}
	if n := admitted(20); n != 3 {
		t.Errorf("frozen clock: admitted %d of 20, want exactly the burst (3)", n)
	}
	advance(20 * time.Millisecond) // 100/s × 20ms = 2 tokens (< burst cap)
	if n := admitted(20); n != 2 {
		t.Errorf("after 20ms refill: admitted %d of 20, want 2", n)
	}
	advance(10 * time.Second) // refill far beyond burst: capped
	if n := admitted(20); n != 3 {
		t.Errorf("after long idle: admitted %d of 20, want burst cap (3)", n)
	}
}
