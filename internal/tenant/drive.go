package tenant

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/stats"
)

// Drive is the load generator for the serving layer — the tenant-aware
// counterpart of workload.RunArrivals. Closed loop keeps Workers
// submissions permanently in flight (capacity measurement); open loop
// draws Poisson interarrivals at Rate regardless of completions
// (overload measurement), so admission control — not the generator —
// decides what happens when the system falls behind.

// Pick is one generated arrival.
type Pick struct {
	Tenant string
	TI     int
}

// DriveConfig configures one run.
type DriveConfig struct {
	// OpenLoop selects Poisson arrivals at Rate/sec; otherwise a closed
	// loop with Workers in flight.
	OpenLoop bool
	Rate     float64
	// Total is the number of arrivals to offer.
	Total int
	// Workers is the closed-loop concurrency (default 1).
	Workers int
	// MaxInFlight bounds open-loop goroutines; arrivals beyond it are
	// dropped at the generator (counted in Dropped, never submitted).
	// 0 means 4096.
	MaxInFlight int
	// Seed drives interarrivals and Pick's rng.
	Seed int64
	// Pick draws the next arrival (tenant + program index); it is
	// called from the arrival loop only, so it may use the rng freely.
	Pick func(*rand.Rand) Pick
}

// DriveResult summarizes one run. Admission outcomes are split so the
// latency gates stay honest: NormalLatency records only normally
// admitted committed requests (the µs-scale degraded path would drown
// an overload p99), DegradedLatency records the stale-read path.
type DriveResult struct {
	Offered, Dropped                 int
	Admitted, Degraded, Shed, Errors int
	Committed, RolledBack            int
	Retries                          int
	EpsCharged                       metric.Fuzz
	Elapsed                          time.Duration
	CommittedTPS                     float64
	NormalLatency, DegradedLatency   *stats.Recorder
}

// Drive offers cfg.Total arrivals to s and waits for every submitted
// request to settle (or ctx to end).
func Drive(ctx context.Context, s *Serve, cfg DriveConfig) *DriveResult {
	res := &DriveResult{
		NormalLatency:   stats.NewRecorder(),
		DegradedLatency: stats.NewRecorder(),
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	submit := func(p Pick) {
		defer wg.Done()
		out, err := s.Submit(ctx, p.Tenant, p.TI)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == ErrShed:
			res.Shed++
		case err != nil:
			res.Errors++
		case out.Degraded:
			res.Degraded++
			res.Committed++
			res.EpsCharged += out.Charged
			res.DegradedLatency.Add(out.Latency)
		default:
			res.Admitted++
			if out.Inner.Committed {
				res.Committed++
				res.NormalLatency.Add(out.Latency)
			} else {
				res.RolledBack++
			}
			res.Retries += out.Inner.Retries
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	if cfg.OpenLoop {
		maxInFlight := cfg.MaxInFlight
		if maxInFlight < 1 {
			maxInFlight = 4096
		}
		inFlight := 0
		done := func() {
			mu.Lock()
			inFlight--
			mu.Unlock()
		}
		next := start
	arrivals:
		for i := 0; i < cfg.Total; i++ {
			next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break arrivals
				}
			}
			p := cfg.Pick(rng)
			res.Offered++
			mu.Lock()
			if inFlight >= maxInFlight {
				res.Dropped++
				mu.Unlock()
				continue
			}
			inFlight++
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer done()
				submit(p)
			}()
		}
	} else {
		workers := cfg.Workers
		if workers < 1 {
			workers = 1
		}
		jobs := make(chan Pick)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range jobs {
					wg.Add(1)
					submit(p)
				}
			}()
		}
	loop:
		for i := 0; i < cfg.Total; i++ {
			select {
			case jobs <- cfg.Pick(rng):
				res.Offered++
			case <-ctx.Done():
				break loop
			}
		}
		close(jobs)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.CommittedTPS = float64(res.Committed) / res.Elapsed.Seconds()
	}
	return res
}
