package tenant

import (
	"context"
	"strings"
	"sync"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// The partitions share one observability plane — one ledger, one
// tracer. What keeps tenant A's ε accounting out of tenant B's books is
// core.Config.IDBase: partition k mints owner and group IDs from
// (k+1)<<40, so two runners can never bind the same ledger page. These
// tests pin that seam: heavy conflict-and-retry traffic on A's
// partition must not leave a single debit, receipt, or shared group on
// B's accounts.

// contendedTenant builds a tenant whose audit queries import up to eps
// from transfers hammering one hot pair — the E1 bank shape, scoped to
// one tenant's keyspace.
func contendedTenant(name string, eps metric.Fuzz) Tenant {
	hot := storage.Key(name + ":hot")
	sink := storage.Key(name + ":sink")
	xfer := txn.MustProgram(name+"/xfer",
		txn.AddOp(hot, -5),
		txn.AddOp(sink, 5),
	)
	audit := txn.MustProgram(name+"/audit",
		txn.ReadOp(hot),
		txn.ReadOp(sink),
	).WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	return Tenant{
		Name:     name,
		Programs: []*txn.Program{xfer, audit},
		Initial:  map[storage.Key]metric.Value{hot: 10000, sink: 0},
	}
}

func TestLedgerIsolationAcrossPartitions(t *testing.T) {
	ledger := obs.NewLedger()
	plane := obs.NewPlane(nil, ledger, nil)
	s, err := New(Config{
		Partitions: 2,
		Pools:      2,
		Workers:    2,
		Obs:        plane,
		Assign:     modAssign(2),
	}, []Tenant{contendedTenant("t0", 1000), contendedTenant("t1", 1000)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Drive both partition runners directly and concurrently — below
	// the mailbox, where real engine-level contention (lock conflicts,
	// DC absorption, retries) happens. The serving layer's accessors
	// exist exactly for this kind of audit.
	ctx := context.Background()
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		r := s.Runner(k)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					if _, err := r.Submit(ctx, i%2); err != nil {
						t.Errorf("runner submit: %v", err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	accounts := ledger.Accounts()
	if len(accounts) == 0 {
		t.Fatal("no ledger accounts — contention run produced no ε transactions")
	}
	// Partition k's groups must live in ((k+1)<<40, (k+2)<<40).
	lo, hi := int64(1)<<40, int64(2)<<40
	var absorbed bool
	for _, a := range accounts {
		var want string
		switch {
		case a.Group > lo && a.Group < hi:
			want = "t0/"
		case a.Group > hi && a.Group < int64(3)<<40:
			want = "t1/"
		default:
			t.Fatalf("group %d outside any partition's ID range", a.Group)
		}
		if a.Name != "" && !strings.HasPrefix(a.Name, want) {
			t.Errorf("group %d bound to %q — a foreign tenant's program on this partition's ledger range", a.Group, a.Name)
		}
		// Every receipt's peer must be a neighbour from the same
		// partition: a cross-partition peer would mean one tenant's
		// conflict debited against another's transaction.
		for _, ch := range a.Charges {
			if ch.Peer == 0 {
				continue // settled/unknown peer: no attribution
			}
			sameRange := (a.Group < hi) == (ch.Peer < hi)
			if !sameRange {
				t.Errorf("group %d charge on %q has cross-partition peer %d", a.Group, ch.Key, ch.Peer)
			}
			absorbed = true
		}
	}
	if !absorbed {
		t.Log("note: no conflicts were absorbed this run; isolation of group ranges still verified")
	}
}

func TestTenantEpsChargesStayWithTheirTenant(t *testing.T) {
	// Serving-layer view of the same property: tenant A overloads and
	// pays ε on the degrade path; tenant B, co-resident in the same
	// process and plane, must stay at zero charged.
	ta := contendedTenant("t0", 100)
	ta.Rate, ta.Burst = 1000, 1
	tb := contendedTenant("t1", 100)
	now, _ := frozenClock()
	plane := obs.NewPlane(nil, nil, obs.NewRegistry())
	s, err := New(Config{Partitions: 2, Obs: plane, Assign: modAssign(2), Now: now}, []Tenant{ta, tb})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Submit(ctx, "t0", 0); err != nil { // burn t0's burst
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // t0 degrades, charging 100 each
		if res, err := s.Submit(ctx, "t0", 1); err != nil || !res.Degraded {
			t.Fatalf("t0 degrade %d: res=%+v err=%v", i, res, err)
		}
	}
	for i := 0; i < 5; i++ { // t1 cruises on the normal path
		if res, err := s.Submit(ctx, "t1", i%2); err != nil || res.Degraded {
			t.Fatalf("t1 submit %d: res=%+v err=%v", i, res, err)
		}
	}
	if st := s.TenantStats("t0"); st.EpsCharged != 300 {
		t.Errorf("t0 EpsCharged = %d, want 300", st.EpsCharged)
	}
	if st := s.TenantStats("t1"); st.EpsCharged != 0 || st.Degraded != 0 {
		t.Errorf("t1 stats = %+v, want zero ε activity", st)
	}
	// The plane's per-tenant summary reflects the same split.
	var sawT0 bool
	for _, line := range plane.Summary() {
		if strings.Contains(line, "tenant t0:") {
			sawT0 = true
			if !strings.Contains(line, "300 ε charged") {
				t.Errorf("plane summary for t0: %q, want 300 ε charged", line)
			}
		}
		if strings.Contains(line, "tenant t1:") && !strings.Contains(line, "0 ε charged") {
			t.Errorf("plane summary for t1: %q, want 0 ε charged", line)
		}
	}
	if !sawT0 {
		t.Error("plane summary missing tenant t0 line")
	}
}
