package tenant

import "sort"

// Hot-partition rebalancing. The load signal per partition is what the
// metrics plane already exports — instantaneous mailbox depth plus the
// served-count delta since the last pass — smoothed with an EWMA so one
// bursty interval does not thrash assignments. Placement is greedy LPT:
// partitions sorted by descending load, each assigned to the currently
// lightest pool. Ties break deterministically (partition id asc, pool
// id asc), which reproduces the initial k % Pools layout on uniform
// load so an idle system never migrates anything.

const ewmaAlpha = 0.5

// Rebalance recomputes the partition→pool assignment from current load
// and returns how many partitions moved. Safe to call concurrently
// with Submit: a moved partition simply lands on its new pool's run
// queue at its next schedule; the scheduled flag still guarantees
// serial execution across the move.
func (s *Serve) Rebalance() int {
	if len(s.pools) < 2 {
		return 0
	}
	s.rbMu.Lock()
	defer s.rbMu.Unlock()

	type cand struct {
		p    *partition
		load float64
	}
	cands := make([]cand, 0, len(s.parts))
	for _, p := range s.parts {
		served := p.served.Load()
		delta := float64(served - p.lastServed)
		p.lastServed = served
		inst := 4*float64(len(p.mailbox)) + delta
		p.loadEWMA = ewmaAlpha*inst + (1-ewmaAlpha)*p.loadEWMA
		cands = append(cands, cand{p, p.loadEWMA})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].load > cands[j].load })
	if len(cands) == 0 || cands[0].load == 0 {
		return 0 // idle system: zero loads would all argmin to pool 0
	}

	loads := make([]float64, len(s.pools))
	moved := 0
	for _, c := range cands {
		best := 0
		for i := 1; i < len(loads); i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		loads[best] += c.load
		if int(c.p.pool.Swap(int32(best))) != best {
			moved++
		}
	}
	s.rebalances.Add(1)
	s.moves.Add(int64(moved))
	return moved
}
