package tenant

import (
	"context"
	"fmt"
	"testing"
)

func TestRebalanceIsolatesHotPartition(t *testing.T) {
	// Four partitions over two pools, initially striped k % 2. Tenant
	// t0's partition gets ~20× the traffic; after a rebalance it must
	// own a pool by itself, with the three cool partitions sharing the
	// other — the greedy LPT outcome for one dominant load.
	var tenants []Tenant
	for i := 0; i < 4; i++ {
		tenants = append(tenants, testTenant(fmt.Sprintf("t%d", i), 0))
	}
	s, err := New(Config{Partitions: 4, Pools: 2, Workers: 2, Assign: modAssign(4)}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for i := 0; i < 60; i++ {
		if _, err := s.Submit(ctx, "t0", 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if _, err := s.Submit(ctx, fmt.Sprintf("t%d", i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	moved := s.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance moved nothing despite a 20× hot partition")
	}
	hot := s.PoolOf(0)
	for k := 1; k < 4; k++ {
		if s.PoolOf(k) == hot {
			t.Errorf("cool partition %d shares pool %d with the hot partition", k, hot)
		}
	}
	st := s.Stats()
	if st.Rebalances != 1 || st.Moves != int64(moved) {
		t.Errorf("stats rebalances=%d moves=%d, want 1/%d", st.Rebalances, st.Moves, moved)
	}

	// Traffic still flows to every tenant after the moves.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("t%d", i)
		if res, err := s.Submit(ctx, name, 0); err != nil || !res.Committed() {
			t.Fatalf("%s after rebalance: res=%+v err=%v", name, res, err)
		}
	}
}

func TestRebalanceNoopCases(t *testing.T) {
	// Single pool: nothing to balance across.
	s1, err := New(Config{Partitions: 4, Pools: 1, Assign: modAssign(4)}, []Tenant{testTenant("t0", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if moved := s1.Rebalance(); moved != 0 {
		t.Errorf("single-pool rebalance moved %d", moved)
	}

	// Idle system: zero load everywhere must not collapse every
	// partition onto pool 0.
	s2, err := New(Config{Partitions: 4, Pools: 2, Assign: modAssign(4)}, []Tenant{testTenant("t0", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if moved := s2.Rebalance(); moved != 0 {
		t.Errorf("idle rebalance moved %d", moved)
	}
	for k := 0; k < 4; k++ {
		if got := s2.PoolOf(k); got != k%2 {
			t.Errorf("idle rebalance moved partition %d to pool %d", k, got)
		}
	}
}

func TestUniformLoadKeepsStripedAssignment(t *testing.T) {
	// Equal per-partition load reproduces the k % Pools striping, so a
	// balanced system never migrates partitions back and forth.
	var tenants []Tenant
	for i := 0; i < 4; i++ {
		tenants = append(tenants, testTenant(fmt.Sprintf("t%d", i), 0))
	}
	s, err := New(Config{Partitions: 4, Pools: 2, Workers: 2, Assign: modAssign(4)}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			if _, err := s.Submit(ctx, fmt.Sprintf("t%d", i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if moved := s.Rebalance(); moved != 0 {
		t.Errorf("uniform load moved %d partitions", moved)
	}
	for k := 0; k < 4; k++ {
		if got := s.PoolOf(k); got != k%2 {
			t.Errorf("uniform rebalance moved partition %d to pool %d", k, got)
		}
	}
}
