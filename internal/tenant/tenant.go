// Package tenant is the multi-tenant partitioned serving layer: many
// logical app partitions — each with its own core.Runner, engine,
// striped store, and disjoint slice of the ε-provenance ledger —
// multiplexed over a small number of bounded shared worker pools, so
// one process serves N tenants partition-parallel instead of one
// workload through one pipeline.
//
// The shape is the appparts scheduling model: a router hashes tenant →
// partition; each partition owns a bounded mailbox; a partition with
// queued work is scheduled (at most once) onto its pool's run queue,
// where a fixed set of workers drains mailboxes a batch at a time.
// There is no goroutine per tenant and no lock shared between
// partitions on the execute path — a partition executes serially, so a
// hot tenant cannot convoy the engines of the others, and the
// conflict-retry tax a shared single runner pays under contention
// disappears by construction.
//
// Admission control is per tenant and two-staged, the paper's ε knob
// used as a live overload control: a token bucket bounds the admitted
// request rate, and when a tenant is over rate (or its partition's
// queue is past the degrade threshold) its queries do not queue — they
// are served from the partition store's current (fuzzy) image and the
// program's declared import bound is charged against the tenant's
// ε-spend bucket and metrics. Only when that degrade path is exhausted
// too (updates, strict queries, or an empty ε bucket) is the request
// shed with ErrShed. Spending divergence is the first relief valve;
// rejection is the last.
//
// Hot-partition detection reads the same signals the metrics plane
// exports (mailbox depth, served rate) and greedily rebalances the
// partition→pool assignment so one pool does not starve while another
// idles.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ErrShed reports that admission control rejected the request after the
// ε-degrade path was exhausted. Callers treat it as backpressure, not
// failure: the request was never executed.
var ErrShed = errors.New("tenant: request shed by admission control")

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("tenant: serving layer closed")

// Tenant declares one logical application: its program table, initial
// store image, and admission limits. Tenants sharing a partition must
// have disjoint key spaces (prefix your keys with the tenant name).
type Tenant struct {
	// Name identifies the tenant in routing, stats, and metrics labels.
	Name string
	// Programs and Counts declare the tenant's job stream (Counts
	// defaults to 1 each), exactly as core.Config does.
	Programs []*txn.Program
	Counts   []int
	// Initial seeds the tenant's keys in its partition's store.
	Initial map[storage.Key]metric.Value
	// Rate and Burst are the admitted-request token bucket
	// (requests/sec; Burst defaults to Rate/4, min 1). Rate 0 disables
	// request rate limiting.
	Rate, Burst float64
	// EpsRate and EpsBurst are the ε-spend bucket for the degraded
	// stale-read path (fuzz/sec). EpsRate 0 leaves degradation
	// unmetered: the tenant may spend divergence freely under overload.
	EpsRate, EpsBurst float64
}

// Config configures the serving layer.
type Config struct {
	// Partitions is the number of logical partitions (default 8).
	Partitions int
	// Pools is the number of shared worker pools the partitions are
	// multiplexed over (default 1); Workers is the total worker count
	// across all pools (default Partitions), split evenly.
	Pools, Workers int
	// MailboxDepth bounds each partition's queue (default 64).
	// DegradeDepth is the per-partition depth at which queries stop
	// queueing and start degrading (default MailboxDepth/2); updates
	// may fill the mailbox to the brim before shedding.
	MailboxDepth, DegradeDepth int
	// Method / Distribution / Engine / OpDelay configure every
	// partition's core.Runner (Method defaults to BaselineESRDC).
	Method       core.Method
	Distribution core.Distribution
	Engine       core.EngineKind
	OpDelay      time.Duration
	// Obs attaches the observability plane, shared across partitions.
	// Each partition runner gets a disjoint core.Config.IDBase so
	// ledger accounts and trace spans never collide.
	Obs *obs.Plane
	// RebalanceEvery starts the background hot-partition rebalancer at
	// that interval (0 leaves rebalancing manual via Rebalance).
	RebalanceEvery time.Duration
	// Assign overrides the tenant→partition router (default: FNV-1a
	// hash of the tenant name modulo Partitions). Benchmarks use it for
	// deterministic balanced placement.
	Assign func(tenant string) int
	// Now is the admission clock (tests inject a fake; default
	// time.Now). Latency measurements always use the real clock.
	Now func() time.Time
}

// Result is one served request.
type Result struct {
	Tenant  string
	Program string
	// Degraded reports the ε-spending stale-read fast path; Charged is
	// the fuzziness billed for it and Reads the (fuzzy) sum of values
	// read. Inner is nil on this path.
	Degraded bool
	Charged  metric.Fuzz
	Reads    metric.Value
	// Inner is the engine result for normally admitted requests.
	Inner *core.InstanceResult
	// Queue is the time spent in the partition mailbox; Latency is the
	// full submit-to-done time.
	Queue   time.Duration
	Latency time.Duration
}

// SumReads totals the values read, on either path.
func (r *Result) SumReads() metric.Value {
	if r.Degraded {
		return r.Reads
	}
	if r.Inner == nil {
		return 0
	}
	return r.Inner.SumReads()
}

// Committed reports whether the request took effect: engine-committed
// on the normal path, served on the degraded path.
func (r *Result) Committed() bool {
	if r.Degraded {
		return true
	}
	return r.Inner != nil && r.Inner.Committed
}

// progInfo is the per-program admission precomputation.
type progInfo struct {
	query    bool
	eligible bool        // query servable from a stale image
	charge   metric.Fuzz // declared import bound billed per degraded serve
}

// tenantState is one tenant's runtime: routing, buckets, counters.
type tenantState struct {
	cfg  Tenant
	part *partition
	base int // index of this tenant's program 0 in the merged table

	reqBucket *bucket
	epsBucket *bucket
	info      []progInfo

	admitted   atomic.Int64
	degraded   atomic.Int64
	shed       atomic.Int64
	epsCharged atomic.Int64
}

// request is one queued submission.
type request struct {
	ctx  context.Context
	ti   int // merged program index
	enq  time.Time
	done chan reqDone
}

type reqDone struct {
	res   *core.InstanceResult
	err   error
	queue time.Duration
}

// partition is one scheduling domain: a runner, its store, a mailbox,
// and the scheduled flag that keeps it on at most one run queue (and
// hence executing serially).
type partition struct {
	id        int
	runner    *core.Runner
	store     *storage.Store
	progs     []*txn.Program
	mailbox   chan *request
	scheduled atomic.Bool
	pool      atomic.Int32
	served    atomic.Int64

	// Rebalancer-only state, guarded by Serve.rbMu.
	lastServed int64
	loadEWMA   float64
}

// pool is one bounded worker pool.
type pool struct {
	id      int
	workers int
	runq    chan *partition
	busy    atomic.Int64
}

// Serve is the multi-tenant serving layer.
type Serve struct {
	cfg          Config
	parts        []*partition
	pools        []*pool
	byName       map[string]*tenantState
	degradeDepth int
	now          func() time.Time

	closed   atomic.Bool
	inflight sync.WaitGroup
	workers  sync.WaitGroup

	rbMu       sync.Mutex
	rebalances atomic.Int64
	moves      atomic.Int64
	stopRb     chan struct{}
	rbDone     sync.WaitGroup
}

// hashPartition is the default router: FNV-1a of the tenant name.
func hashPartition(name string, parts int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(parts))
}

// New builds the serving layer: routes tenants to partitions, builds
// one core.Runner + store per non-empty partition (with disjoint ID
// bases), and starts the worker pools.
func New(cfg Config, tenants []Tenant) (*Serve, error) {
	if len(tenants) == 0 {
		return nil, errors.New("tenant: need at least one tenant")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	if cfg.Pools <= 0 {
		cfg.Pools = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Partitions
	}
	if cfg.Workers < cfg.Pools {
		cfg.Workers = cfg.Pools
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 64
	}
	if cfg.DegradeDepth <= 0 || cfg.DegradeDepth > cfg.MailboxDepth {
		cfg.DegradeDepth = cfg.MailboxDepth / 2
		if cfg.DegradeDepth < 1 {
			cfg.DegradeDepth = 1
		}
	}
	if cfg.Method == 0 {
		cfg.Method = core.BaselineESRDC
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	assign := cfg.Assign
	if assign == nil {
		assign = func(name string) int { return hashPartition(name, cfg.Partitions) }
	}

	s := &Serve{
		cfg:          cfg,
		byName:       make(map[string]*tenantState, len(tenants)),
		degradeDepth: cfg.DegradeDepth,
		now:          cfg.Now,
		stopRb:       make(chan struct{}),
	}
	s.parts = make([]*partition, cfg.Partitions)
	for k := range s.parts {
		s.parts[k] = &partition{
			id:      k,
			mailbox: make(chan *request, cfg.MailboxDepth),
		}
		s.parts[k].pool.Store(int32(k % cfg.Pools))
	}

	// Route tenants and build each partition's merged program table.
	type build struct {
		progs   []*txn.Program
		counts  []int
		initial map[storage.Key]metric.Value
	}
	builds := make([]build, cfg.Partitions)
	for _, tc := range tenants {
		if tc.Name == "" {
			return nil, errors.New("tenant: tenant needs a name")
		}
		if _, dup := s.byName[tc.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant %q", tc.Name)
		}
		if len(tc.Programs) == 0 {
			return nil, fmt.Errorf("tenant %s: needs programs", tc.Name)
		}
		if len(tc.Counts) != 0 && len(tc.Counts) != len(tc.Programs) {
			return nil, fmt.Errorf("tenant %s: %d counts for %d programs", tc.Name, len(tc.Counts), len(tc.Programs))
		}
		k := assign(tc.Name)
		if k < 0 || k >= cfg.Partitions {
			return nil, fmt.Errorf("tenant %s: assigned to partition %d of %d", tc.Name, k, cfg.Partitions)
		}
		b := &builds[k]
		if b.initial == nil {
			b.initial = make(map[storage.Key]metric.Value)
		}
		ts := &tenantState{cfg: tc, part: s.parts[k], base: len(b.progs)}
		b.progs = append(b.progs, tc.Programs...)
		counts := tc.Counts
		if len(counts) == 0 {
			counts = make([]int, len(tc.Programs))
			for i := range counts {
				counts[i] = 1
			}
		}
		b.counts = append(b.counts, counts...)
		for key, v := range tc.Initial {
			if _, dup := b.initial[key]; dup {
				return nil, fmt.Errorf("tenant %s: key %q collides with a co-located tenant", tc.Name, key)
			}
			b.initial[key] = v
		}
		burst := tc.Burst
		if burst <= 0 {
			burst = tc.Rate / 4
			if burst < 1 {
				burst = 1
			}
		}
		ts.reqBucket = newBucket(tc.Rate, burst, cfg.Now())
		epsBurst := tc.EpsBurst
		if epsBurst <= 0 {
			epsBurst = tc.EpsRate
		}
		ts.epsBucket = newBucket(tc.EpsRate, epsBurst, cfg.Now())
		ts.info = make([]progInfo, len(tc.Programs))
		for i, p := range tc.Programs {
			info := progInfo{query: p.Class() == txn.Query}
			if info.query {
				switch {
				case p.Spec.Import.IsInfinite():
					info.eligible = true // unrestricted query: degrade free
				case p.Spec.Import.Bound() > 0:
					info.eligible = true
					info.charge = p.Spec.Import.Bound()
				}
				// A strict query (import 0) tolerates no divergence and
				// must go through the engine or be shed.
			}
			ts.info[i] = info
		}
		s.byName[tc.Name] = ts
	}

	for k, b := range builds {
		if len(b.progs) == 0 {
			continue // unpopulated partition: never routed to
		}
		p := s.parts[k]
		p.store = storage.NewFrom(b.initial)
		r, err := core.NewRunner(core.Config{
			Method:       cfg.Method,
			Distribution: cfg.Distribution,
			Store:        p.store,
			Programs:     b.progs,
			Counts:       b.counts,
			Engine:       cfg.Engine,
			OpDelay:      cfg.OpDelay,
			Obs:          cfg.Obs,
			// Disjoint owner/group ID ranges per partition: the plane's
			// ledger and tracer are shared, and colliding groups would
			// merge two tenants' ε accounts (the isolation the layer
			// exists to provide).
			IDBase: int64(k+1) << 40,
		})
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", k, err)
		}
		p.runner = r
		p.progs = b.progs
		part := p
		cfg.Obs.WatchPartition(strconv.Itoa(k),
			func() float64 { return float64(len(part.mailbox)) },
			func() float64 { return float64(part.served.Load()) })
	}

	// Worker pools: Workers split round-robin across Pools.
	s.pools = make([]*pool, cfg.Pools)
	for i := range s.pools {
		n := cfg.Workers / cfg.Pools
		if i < cfg.Workers%cfg.Pools {
			n++
		}
		pl := &pool{id: i, workers: n, runq: make(chan *partition, cfg.Partitions)}
		s.pools[i] = pl
		cfg.Obs.WatchPool(strconv.Itoa(i), func() float64 {
			if pl.workers == 0 {
				return 0
			}
			return float64(pl.busy.Load()) / float64(pl.workers)
		})
		for w := 0; w < n; w++ {
			s.workers.Add(1)
			go s.worker(pl)
		}
	}

	if cfg.RebalanceEvery > 0 {
		s.rbDone.Add(1)
		go func() {
			defer s.rbDone.Done()
			tick := time.NewTicker(cfg.RebalanceEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					s.Rebalance()
				case <-s.stopRb:
					return
				}
			}
		}()
	}
	return s, nil
}

// dispatchBatch bounds how many requests a worker drains from one
// partition before releasing it, so a deep mailbox cannot starve the
// other partitions sharing the pool.
const dispatchBatch = 8

// schedule puts p on its pool's run queue unless it is already
// scheduled. The flag, not the queue, is the serial-execution token: a
// partition is drained by at most one worker at a time.
func (s *Serve) schedule(p *partition) {
	if p.scheduled.CompareAndSwap(false, true) {
		s.pools[p.pool.Load()].runq <- p
	}
}

// worker drains scheduled partitions, a bounded batch each.
func (s *Serve) worker(pl *pool) {
	defer s.workers.Done()
	for p := range pl.runq {
		pl.busy.Add(1)
		for n := 0; n < dispatchBatch; n++ {
			select {
			case req := <-p.mailbox:
				s.execute(p, req)
			default:
				n = dispatchBatch
			}
		}
		pl.busy.Add(-1)
		p.scheduled.Store(false)
		if len(p.mailbox) > 0 {
			// Refill raced the drain (or the batch bound hit): hand the
			// partition back — possibly to a different pool if the
			// rebalancer moved it.
			s.schedule(p)
		}
	}
}

// execute runs one queued request on the partition's runner.
func (s *Serve) execute(p *partition, req *request) {
	defer s.inflight.Done()
	var d reqDone
	d.queue = time.Since(req.enq)
	if err := req.ctx.Err(); err != nil {
		d.err = err
	} else {
		// Thread the enqueue instant through so the tracer can charge
		// the mailbox wait to the instance's admit phase.
		d.res, d.err = p.runner.Submit(core.WithEnqueueTime(req.ctx, req.enq), req.ti)
	}
	p.served.Add(1)
	req.done <- d // buffered; never blocks even if the submitter left
}

// Submit serves one instance of tenant's program ti. The normal path
// queues it on the tenant's partition and blocks until the engine
// settles it. Under overload — rate bucket empty or partition queue at
// the degrade threshold — eligible queries are served degraded (stale
// read, ε charged); everything else is shed with ErrShed.
func (s *Serve) Submit(ctx context.Context, tenant string, ti int) (*Result, error) {
	t := s.byName[tenant]
	if t == nil {
		return nil, fmt.Errorf("tenant: unknown tenant %q", tenant)
	}
	if ti < 0 || ti >= len(t.cfg.Programs) {
		return nil, fmt.Errorf("tenant %s: program index %d out of range", tenant, ti)
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	start := time.Now()
	p := t.part
	info := t.info[ti]

	// Normal path: a rate token plus queue headroom. Queries stop
	// queueing at the degrade threshold (they have a cheaper way out);
	// updates may fill the mailbox before shedding.
	limit := cap(p.mailbox)
	if info.query {
		limit = s.degradeDepth
	}
	if len(p.mailbox) < limit && t.reqBucket.take(s.now(), 1) {
		req := &request{ctx: ctx, ti: t.base + ti, enq: start, done: make(chan reqDone, 1)}
		s.inflight.Add(1)
		select {
		case p.mailbox <- req:
			t.admitted.Add(1)
			s.cfg.Obs.TenantAdmit(t.cfg.Name)
			s.schedule(p)
			select {
			case d := <-req.done:
				if d.err != nil {
					return nil, d.err
				}
				return &Result{
					Tenant:  t.cfg.Name,
					Program: d.res.Program,
					Inner:   d.res,
					Queue:   d.queue,
					Latency: time.Since(start),
				}, nil
			case <-ctx.Done():
				// The worker will observe the dead context and settle the
				// buffered done channel; the request is not re-queued.
				return nil, ctx.Err()
			}
		default:
			// Lost the race to the last mailbox slot: return the token
			// and fall through to the overload policy.
			s.inflight.Done()
			t.reqBucket.refund(1)
		}
	}

	// Overload policy: spend ε before shedding anything.
	if info.eligible && t.epsBucket.take(s.now(), float64(info.charge)) {
		return s.degradedServe(p, t, ti, info.charge, start), nil
	}
	t.shed.Add(1)
	s.cfg.Obs.TenantShed(t.cfg.Name)
	return nil, ErrShed
}

// degradedServe answers a query from the partition store's current
// image without queueing or validation — the reads are fuzzy up to the
// program's declared import bound, which is exactly what gets charged.
func (s *Serve) degradedServe(p *partition, t *tenantState, ti int, charge metric.Fuzz, start time.Time) *Result {
	prog := t.cfg.Programs[ti]
	var sum metric.Value
	for _, op := range prog.Ops {
		if op.Kind == txn.OpRead {
			sum += p.store.Get(op.Key)
		}
	}
	t.degraded.Add(1)
	t.epsCharged.Add(int64(charge))
	s.cfg.Obs.TenantDegrade(t.cfg.Name, charge)
	return &Result{
		Tenant:   t.cfg.Name,
		Program:  prog.Name,
		Degraded: true,
		Charged:  charge,
		Reads:    sum,
		Latency:  time.Since(start),
	}
}

// Close drains in-flight requests, stops the rebalancer and the worker
// pools, and rejects subsequent Submits. Submit must not be called
// concurrently with Close.
func (s *Serve) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stopRb)
	s.rbDone.Wait()
	s.inflight.Wait()
	for _, pl := range s.pools {
		close(pl.runq)
	}
	s.workers.Wait()
}

// Partition returns the partition a tenant routes to (-1 if unknown).
func (s *Serve) Partition(tenant string) int {
	if t := s.byName[tenant]; t != nil {
		return t.part.id
	}
	return -1
}

// PoolOf returns partition k's current pool assignment.
func (s *Serve) PoolOf(k int) int {
	if k < 0 || k >= len(s.parts) {
		return -1
	}
	return int(s.parts[k].pool.Load())
}

// Partitions returns the partition count.
func (s *Serve) Partitions() int { return len(s.parts) }

// Store returns partition k's store (nil for unpopulated partitions);
// audits sum over all of them.
func (s *Serve) Store(k int) *storage.Store {
	if k < 0 || k >= len(s.parts) {
		return nil
	}
	return s.parts[k].store
}

// Runner returns partition k's runner (nil for unpopulated partitions).
func (s *Serve) Runner(k int) *core.Runner {
	if k < 0 || k >= len(s.parts) {
		return nil
	}
	return s.parts[k].runner
}

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	Admitted, Degraded, Shed int64
	EpsCharged               metric.Fuzz
}

// Allowed reports whether the ε charged so far fits the tenant's
// declared ε-spend budget over the given elapsed time (always true for
// unmetered tenants) — the per-tenant budget audit.
func (ts TenantStats) Allowed(t Tenant, elapsed time.Duration) bool {
	if t.EpsRate <= 0 {
		return true
	}
	burst := t.EpsBurst
	if burst <= 0 {
		burst = t.EpsRate
	}
	return float64(ts.EpsCharged) <= t.EpsRate*elapsed.Seconds()+burst
}

// TenantStats returns one tenant's counters (zero value if unknown).
func (s *Serve) TenantStats(name string) TenantStats {
	t := s.byName[name]
	if t == nil {
		return TenantStats{}
	}
	return TenantStats{
		Admitted:   t.admitted.Load(),
		Degraded:   t.degraded.Load(),
		Shed:       t.shed.Load(),
		EpsCharged: metric.Fuzz(t.epsCharged.Load()),
	}
}

// Stats summarizes the whole layer.
type Stats struct {
	Tenants    map[string]TenantStats
	Rebalances int64
	Moves      int64
}

// Stats returns a snapshot of every tenant plus rebalancer counters.
func (s *Serve) Stats() Stats {
	out := Stats{
		Tenants:    make(map[string]TenantStats, len(s.byName)),
		Rebalances: s.rebalances.Load(),
		Moves:      s.moves.Load(),
	}
	for name := range s.byName {
		out.Tenants[name] = s.TenantStats(name)
	}
	return out
}
