package tenant

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// testTenant builds a two-account tenant: program 0 transfers one unit
// a→b (update), program 1 audits a+b with an ε-import allowance of eps
// (query). Keys are tenant-prefixed so co-located tenants stay disjoint.
func testTenant(name string, eps metric.Fuzz) Tenant {
	a := storage.Key(name + ":a")
	b := storage.Key(name + ":b")
	xfer := txn.MustProgram(name+"/xfer",
		txn.AddOp(a, -1),
		txn.AddOp(b, 1),
	)
	audit := txn.MustProgram(name+"/audit",
		txn.ReadOp(a),
		txn.ReadOp(b),
	).WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	return Tenant{
		Name:     name,
		Programs: []*txn.Program{xfer, audit},
		Initial:  map[storage.Key]metric.Value{a: 100, b: 100},
	}
}

// modAssign routes "t<i>" to partition i % parts, deterministically.
func modAssign(parts int) func(string) int {
	return func(name string) int {
		var i int
		fmt.Sscanf(name, "t%d", &i)
		return i % parts
	}
}

func TestServeCommitsAndConserves(t *testing.T) {
	tenants := []Tenant{testTenant("t0", 0), testTenant("t1", 0), testTenant("t2", 0), testTenant("t3", 0)}
	s, err := New(Config{Partitions: 4, Pools: 2, Workers: 4, Assign: modAssign(4)}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for round := 0; round < 10; round++ {
		for _, tc := range tenants {
			res, err := s.Submit(ctx, tc.Name, 0)
			if err != nil {
				t.Fatalf("%s xfer: %v", tc.Name, err)
			}
			if !res.Committed() || res.Degraded {
				t.Fatalf("%s xfer: want normal commit, got %+v", tc.Name, res)
			}
		}
	}
	// Conservation: every tenant's pair still sums to 200, via the
	// partition stores the audits read.
	for _, tc := range tenants {
		res, err := s.Submit(ctx, tc.Name, 1)
		if err != nil {
			t.Fatalf("%s audit: %v", tc.Name, err)
		}
		if got := res.SumReads(); got != 200 {
			t.Errorf("%s audit read %d, want 200", tc.Name, got)
		}
	}
	// And globally across all partition stores.
	var total metric.Value
	for k := 0; k < s.Partitions(); k++ {
		st := s.Store(k)
		if st == nil {
			continue
		}
		for _, key := range st.Keys() {
			total += st.Get(key)
		}
	}
	if total != 800 {
		t.Errorf("global sum %d, want 800", total)
	}
	for _, tc := range tenants {
		st := s.TenantStats(tc.Name)
		if st.Admitted != 11 || st.Degraded != 0 || st.Shed != 0 {
			t.Errorf("%s stats = %+v, want 11 admitted only", tc.Name, st)
		}
	}
}

func TestRoutingAndAccessors(t *testing.T) {
	s, err := New(Config{Partitions: 4, Assign: modAssign(4)}, []Tenant{testTenant("t1", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Partition("t1"); got != 1 {
		t.Errorf("Partition(t1) = %d, want 1", got)
	}
	if got := s.Partition("nobody"); got != -1 {
		t.Errorf("Partition(nobody) = %d, want -1", got)
	}
	if s.Store(1) == nil || s.Runner(1) == nil {
		t.Error("populated partition must expose store and runner")
	}
	if s.Store(0) != nil || s.Runner(0) != nil {
		t.Error("unpopulated partition must expose nils")
	}
	if s.Store(99) != nil || s.Runner(-1) != nil || s.PoolOf(99) != -1 {
		t.Error("out-of-range accessors must return nil / -1")
	}
	if _, err := s.Submit(context.Background(), "nobody", 0); err == nil {
		t.Error("unknown tenant must error")
	}
	if _, err := s.Submit(context.Background(), "t1", 7); err == nil {
		t.Error("out-of-range program index must error")
	}
}

func TestDefaultRouterCoversAllTenants(t *testing.T) {
	var tenants []Tenant
	for i := 0; i < 16; i++ {
		tenants = append(tenants, testTenant(fmt.Sprintf("t%d", i), 0))
	}
	s, err := New(Config{Partitions: 4}, tenants) // default FNV router
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for _, tc := range tenants {
		k := s.Partition(tc.Name)
		if k < 0 || k >= 4 {
			t.Fatalf("%s routed to %d", tc.Name, k)
		}
		if res, err := s.Submit(ctx, tc.Name, 0); err != nil || !res.Committed() {
			t.Fatalf("%s on default route: res=%+v err=%v", tc.Name, res, err)
		}
	}
}

func TestConstructionErrors(t *testing.T) {
	good := testTenant("t0", 0)
	cases := []struct {
		name    string
		cfg     Config
		tenants []Tenant
	}{
		{"no tenants", Config{}, nil},
		{"unnamed", Config{}, []Tenant{{Programs: good.Programs}}},
		{"duplicate name", Config{}, []Tenant{good, good}},
		{"no programs", Config{}, []Tenant{{Name: "x"}}},
		{"counts mismatch", Config{}, []Tenant{{Name: "x", Programs: good.Programs, Counts: []int{1}}}},
		{"assign out of range", Config{Assign: func(string) int { return 99 }}, []Tenant{good}},
		{"key collision", Config{Assign: func(string) int { return 0 }}, []Tenant{
			{Name: "a", Programs: good.Programs, Initial: map[storage.Key]metric.Value{"k": 1}},
			{Name: "b", Programs: testTenant("b", 0).Programs, Initial: map[storage.Key]metric.Value{"k": 2}},
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, tc.tenants); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
}

// frozenClock returns a Config.Now frozen at start plus a function to
// advance it. Buckets never refill unless the test says so.
func frozenClock() (func() time.Time, func(time.Duration)) {
	now := time.Unix(1000, 0)
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestOverloadDegradesQueriesBeforeShedding(t *testing.T) {
	tc := testTenant("t0", 50)
	tc.Rate, tc.Burst = 1000, 2 // two tokens, frozen clock: no refill
	now, _ := frozenClock()
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }, Now: now}, []Tenant{tc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Two admitted on the burst.
	for i := 0; i < 2; i++ {
		if res, err := s.Submit(ctx, "t0", 0); err != nil || res.Degraded {
			t.Fatalf("submit %d: res=%+v err=%v, want normal admit", i, res, err)
		}
	}
	// Over rate: the query degrades — served stale, charged its bound.
	res, err := s.Submit(ctx, "t0", 1)
	if err != nil {
		t.Fatalf("over-rate query: %v, want degraded serve", err)
	}
	if !res.Degraded || res.Charged != 50 {
		t.Fatalf("over-rate query: %+v, want degraded with 50 charged", res)
	}
	if res.SumReads() != 200 {
		t.Errorf("degraded read %d, want 200 (current store image)", res.SumReads())
	}
	// Over rate: the update has no degrade path — shed.
	if _, err := s.Submit(ctx, "t0", 0); !errors.Is(err, ErrShed) {
		t.Fatalf("over-rate update: err=%v, want ErrShed", err)
	}
	st := s.TenantStats("t0")
	if st.Admitted != 2 || st.Degraded != 1 || st.Shed != 1 || st.EpsCharged != 50 {
		t.Errorf("stats = %+v, want 2/1/1, ε=50", st)
	}
}

func TestEpsBudgetExhaustionSheds(t *testing.T) {
	tc := testTenant("t0", 50)
	tc.Rate, tc.Burst = 1000, 1
	tc.EpsRate, tc.EpsBurst = 1000, 100 // room for exactly two degraded serves
	now, advance := frozenClock()
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }, Now: now}, []Tenant{tc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Submit(ctx, "t0", 0); err != nil { // burn the burst token
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := s.Submit(ctx, "t0", 1)
		if err != nil || !res.Degraded {
			t.Fatalf("degrade %d: res=%+v err=%v", i, res, err)
		}
	}
	// ε bucket dry: even the query sheds now.
	if _, err := s.Submit(ctx, "t0", 1); !errors.Is(err, ErrShed) {
		t.Fatalf("ε-exhausted query: err=%v, want ErrShed", err)
	}
	if st := s.TenantStats("t0"); st.EpsCharged != 100 {
		t.Errorf("EpsCharged = %d, want 100", st.EpsCharged)
	}
	// Refill both buckets: service resumes on the normal path.
	advance(time.Second)
	if res, err := s.Submit(ctx, "t0", 1); err != nil || res.Degraded {
		t.Fatalf("after refill: res=%+v err=%v, want normal admit", res, err)
	}
}

func TestStrictQueryIsNeverDegraded(t *testing.T) {
	a := storage.Key("t0:a")
	strict := txn.MustProgram("t0/strict", txn.ReadOp(a)).WithSpec(metric.Strict)
	tc := Tenant{
		Name:     "t0",
		Programs: []*txn.Program{strict},
		Initial:  map[storage.Key]metric.Value{a: 1},
		Rate:     1000, Burst: 1,
	}
	now, _ := frozenClock()
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }, Now: now}, []Tenant{tc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if res, err := s.Submit(ctx, "t0", 0); err != nil || res.Degraded {
		t.Fatalf("first strict query: res=%+v err=%v", res, err)
	}
	// Over rate: a strict query tolerates zero divergence, so the stale
	// path is not an option — it must shed, never silently degrade.
	if _, err := s.Submit(ctx, "t0", 0); !errors.Is(err, ErrShed) {
		t.Fatalf("over-rate strict query: err=%v, want ErrShed", err)
	}
}

func TestUnmeteredTenantNeverSheds(t *testing.T) {
	tc := testTenant("t0", 50) // Rate 0: no request limit; EpsRate 0: unmetered ε
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }}, []Tenant{tc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := s.Submit(ctx, "t0", i%2); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if st := s.TenantStats("t0"); st.Shed != 0 {
		t.Errorf("unmetered tenant shed %d requests", st.Shed)
	}
}

func TestSubmitAfterCloseAndDoubleClose(t *testing.T) {
	s, err := New(Config{Partitions: 1, Assign: func(string) int { return 0 }}, []Tenant{testTenant("t0", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), "t0", 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), "t0", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err=%v, want ErrClosed", err)
	}
}

func TestConcurrentTenantsStayConsistent(t *testing.T) {
	const parts, perTenant = 4, 25
	var tenants []Tenant
	for i := 0; i < 8; i++ {
		tenants = append(tenants, testTenant(fmt.Sprintf("t%d", i), 0))
	}
	s, err := New(Config{Partitions: parts, Pools: 2, Workers: 4, Assign: modAssign(parts)}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	errc := make(chan error, len(tenants))
	for _, tc := range tenants {
		go func(name string) {
			for i := 0; i < perTenant; i++ {
				if _, err := s.Submit(ctx, name, i%2); err != nil {
					errc <- fmt.Errorf("%s: %w", name, err)
					return
				}
			}
			errc <- nil
		}(tc.Name)
	}
	for range tenants {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range tenants {
		res, err := s.Submit(ctx, tc.Name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.SumReads(); got != 200 {
			t.Errorf("%s pair sums to %d, want 200", tc.Name, got)
		}
	}
}
