// Package tracectx defines the compact trace context that rides every
// cross-process message so distributed span trees survive transport
// hops. It sits below every other internal package (it imports nothing)
// so queue, site, and obs can all share the one wire type without
// import cycles.
//
// A context names the edge between a parent span in the sending
// process and the spans the receiving process will record for the
// message: the trace (the distributed transaction instance ID, which
// is globally unique because every process mints instances above a
// disjoint InstanceBase), the parent span qualified by the process
// that recorded it, a Lamport clock for deterministic cross-process
// ordering, and the wall-clock send instant for wire-time attribution
// (processes in a loadbench -multi run share one host clock, so
// UnixNano timestamps are directly comparable across the hop).
package tracectx

// Ctx is the trace context carried on queue messages and settlement
// reports. The zero value means "no tracing": senders with spans
// disabled stamp nothing, and receivers skip span recording for
// invalid contexts instead of minting orphan fragments.
type Ctx struct {
	// Trace is the distributed transaction instance the message
	// belongs to; zero marks the context invalid.
	Trace uint64
	// Span is the parent span ID in the sending process, and Proc is
	// the span-store identity that recorded it (the receiver cannot
	// resolve Span without it — span IDs are only unique per store).
	Span uint64
	Proc string
	// Clock is the sender's Lamport clock at send time. Receivers
	// fold it into their own clock so merged spans order causally
	// even when wall clocks disagree.
	Clock uint64
	// SentAt is the sender's wall clock (UnixNano) at commit-send,
	// used with the receiver's arrival stamp to measure wire time.
	SentAt int64
}

// Valid reports whether the context carries a trace at all.
func (c Ctx) Valid() bool { return c.Trace != 0 }
