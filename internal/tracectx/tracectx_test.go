package tracectx

import "testing"

// The zero value is the "tracing off" sentinel: queue receivers use
// Valid() to decide whether to record spans, so a zero Trace must be
// invalid no matter what else is set, and any real trace must be valid.
func TestValidIsTracePresence(t *testing.T) {
	var zero Ctx
	if zero.Valid() {
		t.Error("zero Ctx reports valid")
	}
	if (Ctx{Span: 7, Proc: "NY", Clock: 3, SentAt: 99}).Valid() {
		t.Error("Ctx without a trace reports valid")
	}
	if !(Ctx{Trace: 1}).Valid() {
		t.Error("Ctx with a trace reports invalid")
	}
}

// Ctx rides queue.Msg by value and tests compare it with ==; it must
// stay comparable (no slices/maps/pointers creep in with a refactor).
func TestCtxComparable(t *testing.T) {
	a := Ctx{Trace: 42, Span: 0x2a0003, Proc: "NY", Clock: 7, SentAt: 1}
	b := a
	if a != b {
		t.Error("identical contexts compare unequal")
	}
	seen := map[Ctx]bool{a: true}
	if !seen[b] {
		t.Error("Ctx not usable as a map key")
	}
}
