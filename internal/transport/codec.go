// Package transport carries the chopped-transaction pipeline over real
// TCP sockets. It implements the simnet.Net seam — the same Frame /
// BatchFrame discipline the batching layer (internal/queue) already
// speaks — so a cluster runs unchanged over the in-process simulated
// WAN or over the wire, and the two stay conformance-tested twins.
//
// The wire format reuses the WAL's framing discipline
// (internal/storage/wal): every frame is
//
//	[len u32 LE][crc32(payload) u32 LE][payload]
//
// with the payload a gob-encoded simnet.Message. A frame is the unit of
// loss: a torn or corrupt frame kills the connection (the reader can no
// longer trust its offset) and the reliable layers above — recoverable-
// queue retransmission and watermark dedup — recover, exactly as they
// do for a dropped simnet frame. Payload types inside Message ride gob
// and must be registered via queue.RegisterPayloadType in every
// process, which the queue and site packages already do for the whole
// chopped-queue protocol.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"asynctp/internal/simnet"
)

// frameHeader is [len u32][crc u32].
const frameHeader = 8

// MaxFrame bounds a frame payload. The deepest legitimate frame is one
// BatchFrame of maxBatch coalesced queue messages; 16 MiB (the WAL's
// bound) leaves orders of magnitude of headroom while keeping a
// corrupt length field from asking the decoder for gigabytes.
const MaxFrame = 16 << 20

// Codec errors. Decoding distinguishes "frame not yet complete"
// (io.ErrUnexpectedEOF from a stream read) from structural corruption;
// both kill a TCP connection, but tests and the fuzzer assert the
// decoder never panics or over-allocates on either.
var (
	// ErrFrameTooLarge reports a length field beyond MaxFrame: either
	// corruption or an incompatible peer. The connection is unusable.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size bound")
	// ErrFrameCorrupt reports a CRC mismatch or a zero-length frame.
	ErrFrameCorrupt = errors.New("transport: frame failed checksum")
	// ErrBadPayload reports a frame whose bytes do not decode to a
	// simnet.Message (unregistered payload type, truncated gob stream).
	ErrBadPayload = errors.New("transport: frame payload does not decode")
)

// EncodeMessage gob-encodes msg into a frame payload. Every concrete
// Payload type must be gob-registered (queue.RegisterPayloadType).
func EncodeMessage(msg simnet.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return buf.Bytes(), nil
}

// AppendFrame appends the framed payload to dst and returns the
// extended slice. This is the encode hot path: with sufficient
// capacity in dst it performs zero allocations (AllocsPerRun-pinned),
// so the per-peer writer reuses one buffer across a whole coalescing
// window.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeFrame frames msg for the wire: gob payload wrapped in the
// length/CRC header.
func EncodeFrame(msg simnet.Message) ([]byte, error) {
	payload, err := EncodeMessage(msg)
	if err != nil {
		return nil, err
	}
	return AppendFrame(make([]byte, 0, frameHeader+len(payload)), payload), nil
}

// DecodeFrame decodes one frame from the front of b, returning the
// message and the number of bytes consumed. Errors:
//
//   - io.ErrUnexpectedEOF: b ends mid-frame (torn tail). consumed is 0.
//   - ErrFrameTooLarge / ErrFrameCorrupt: structural corruption; the
//     byte stream is unusable from here on.
//   - ErrBadPayload: framing intact but the gob payload is bad.
//
// The decoder validates the length field BEFORE allocating or slicing,
// so corrupt input can never make it over-allocate.
func DecodeFrame(b []byte) (msg simnet.Message, consumed int, err error) {
	if len(b) < frameHeader {
		return simnet.Message{}, 0, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length == 0 {
		return simnet.Message{}, 0, ErrFrameCorrupt
	}
	if length > MaxFrame {
		return simnet.Message{}, 0, ErrFrameTooLarge
	}
	total := frameHeader + int(length)
	if len(b) < total {
		return simnet.Message{}, 0, io.ErrUnexpectedEOF
	}
	payload := b[frameHeader:total]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return simnet.Message{}, 0, ErrFrameCorrupt
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return simnet.Message{}, 0, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return msg, total, nil
}

// ReadFrame reads one frame from a stream. The length field is
// validated before any payload allocation: a corrupt 4 GiB length
// costs nothing but the 8 header bytes already read. io.EOF is
// returned only at a clean frame boundary; a connection dying
// mid-frame surfaces io.ErrUnexpectedEOF (the TCP analog of the WAL's
// torn tail).
func ReadFrame(r *bufio.Reader) (simnet.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return simnet.Message{}, io.EOF // clean close between frames
		}
		return simnet.Message{}, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return simnet.Message{}, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length == 0 {
		return simnet.Message{}, ErrFrameCorrupt
	}
	if length > MaxFrame {
		return simnet.Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return simnet.Message{}, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return simnet.Message{}, ErrFrameCorrupt
	}
	var msg simnet.Message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return simnet.Message{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return msg, nil
}
