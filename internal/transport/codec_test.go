package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"asynctp/internal/queue"
	"asynctp/internal/simnet"
)

// testMsg is a realistic wire message: a batched queue transfer with
// piggybacked acks, the dominant frame on a busy link.
func testMsg() simnet.Message {
	return simnet.Message{
		From: "NY", To: "LA", Kind: queue.KindEnqueueBatch,
		Payload: queue.BatchFrame{
			Msgs: []queue.Msg{
				{ID: "NY->LA#1", Seq: 1, From: "NY", Queue: "pieces", Payload: "piece-1"},
				{ID: "NY->LA#2", Seq: 2, From: "NY", Queue: "pieces", Payload: "piece-2"},
			},
			Acks: []string{"LA->NY#7", "LA->NY#8"},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := testMsg()
	frame, err := EncodeFrame(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, consumed, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if consumed != len(frame) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(frame))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
	// Trailing bytes after a complete frame must not disturb it.
	got2, consumed2, err := DecodeFrame(append(append([]byte(nil), frame...), 0xFF, 0xFF))
	if err != nil || consumed2 != len(frame) || !reflect.DeepEqual(got2, want) {
		t.Fatalf("decode with trailing bytes: err=%v consumed=%d", err, consumed2)
	}
}

func TestDecodeTornFrame(t *testing.T) {
	frame, err := EncodeFrame(testMsg())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 0; cut < len(frame); cut++ {
		_, consumed, err := DecodeFrame(frame[:cut])
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
		if consumed != 0 {
			t.Fatalf("cut at %d: torn frame consumed %d bytes", cut, consumed)
		}
	}
}

func TestDecodeBadCRC(t *testing.T) {
	frame, err := EncodeFrame(testMsg())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Flip one payload bit; the CRC must catch it.
	frame[len(frame)-1] ^= 0x01
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("payload bit flip: want ErrFrameCorrupt, got %v", err)
	}
	// Flip a CRC bit with an intact payload: same verdict.
	frame[len(frame)-1] ^= 0x01
	frame[5] ^= 0x80
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("crc bit flip: want ErrFrameCorrupt, got %v", err)
	}
}

func TestDecodeOversizedLength(t *testing.T) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxFrame+1)
	if _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: want ErrFrameTooLarge, got %v", err)
	}
	// A 4 GiB length claim must error identically — and (asserted by the
	// fuzzer's alloc bound) without attempting the allocation.
	binary.LittleEndian.PutUint32(hdr[0:4], 0xFFFFFFFF)
	if _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("4GiB length: want ErrFrameTooLarge, got %v", err)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], 0)
	if _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("zero length: want ErrFrameCorrupt, got %v", err)
	}
}

func TestDecodeBadPayload(t *testing.T) {
	// Valid framing around bytes that are not a gob-encoded Message.
	frame := AppendFrame(nil, []byte("not a gob stream"))
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("garbage payload: want ErrBadPayload, got %v", err)
	}
}

func TestReadFrameStream(t *testing.T) {
	msgs := []simnet.Message{
		testMsg(),
		{From: "LA", To: "NY", Kind: queue.KindAckBatch,
			Payload: queue.AckFrame{IDs: []string{"NY->LA#1"}}},
	}
	var wire []byte
	for _, m := range msgs {
		frame, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		wire = append(wire, frame...)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	for i, want := range msgs {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d mismatch:\n got  %+v\n want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("clean end of stream: want io.EOF, got %v", err)
	}
	// A stream dying mid-frame is a torn tail, not a clean EOF.
	br = bufio.NewReader(bytes.NewReader(wire[:len(wire)-3]))
	if _, err := ReadFrame(br); err != nil {
		t.Fatalf("first frame of torn stream: %v", err)
	}
	if _, err := ReadFrame(br); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn tail: want ErrUnexpectedEOF, got %v", err)
	}
}

// TestAppendFrameAllocs pins the framing hot path at zero allocations
// when the destination buffer has capacity — the per-peer writer reuses
// one buffer across a coalescing window, so header+copy must not
// allocate per frame.
func TestAppendFrameAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 512)
	dst := make([]byte, 0, 8*(frameHeader+len(payload)))
	allocs := testing.AllocsPerRun(1000, func() {
		dst = AppendFrame(dst[:0], payload)
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocates %v times per frame; want 0", allocs)
	}
}
