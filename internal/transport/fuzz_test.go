package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes to both frame decoders. The
// invariants under attack: never panic, never report consuming more
// bytes than exist, and never allocate anywhere near a corrupt length
// field's claim — a frame header promising 4 GiB must cost 8 bytes of
// header read, not 4 GiB of make(). Run via CI smoke (seconds) and the
// nightly long fuzz, like FuzzWALDecode.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	if frame, err := EncodeFrame(testMsg()); err == nil {
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // torn tail
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-1] ^= 0x01 // CRC mismatch
		f.Add(flipped)
		f.Add(append(append([]byte(nil), frame...), frame...)) // two frames
	}
	var huge [frameHeader]byte
	binary.LittleEndian.PutUint32(huge[0:4], 0xFFFFFFFF) // 4 GiB length claim
	f.Add(huge[:])
	f.Add(AppendFrame(nil, []byte("valid framing, garbage gob payload")))

	f.Fuzz(func(t *testing.T, data []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		msg, consumed, err := DecodeFrame(data)
		runtime.ReadMemStats(&after)
		// The slice decoder sees the whole input up front, so its
		// allocation is O(input): the payload view plus gob overhead,
		// never a corrupt length field's claim. 1 MiB of slack over 4x
		// input covers gob's buffers.
		if grew := after.TotalAlloc - before.TotalAlloc; grew > uint64(4*len(data))+1<<20 {
			t.Fatalf("slice-decoding %d bytes allocated %d bytes", len(data), grew)
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if err == nil {
			// A frame that decoded must re-frame to an equal prefix
			// modulo gob's nondeterministic map ordering — cheap sanity:
			// the re-encoded frame must itself decode.
			re, eerr := EncodeFrame(msg)
			if eerr != nil {
				t.Fatalf("decoded message does not re-encode: %v", eerr)
			}
			if _, _, derr := DecodeFrame(re); derr != nil {
				t.Fatalf("re-encoded frame does not decode: %v", derr)
			}
		} else if consumed != 0 {
			t.Fatalf("error %v yet consumed %d bytes", err, consumed)
		}

		// The stream decoder must agree with the slice decoder on
		// whether the first frame is sound (not necessarily on the
		// specific error: a slice sees torn framing where a stream sees
		// a short read). Unlike the slice decoder it cannot see the
		// input's true size, so it may allocate an in-range length
		// claim before the short read surfaces — but never more than
		// the MaxFrame bound.
		runtime.ReadMemStats(&before)
		_, serr := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		runtime.ReadMemStats(&after)
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: slice err=%v, stream err=%v", err, serr)
		}
		if grew := after.TotalAlloc - before.TotalAlloc; grew > MaxFrame+uint64(4*len(data))+1<<20 {
			t.Fatalf("stream-decoding %d bytes allocated %d bytes", len(data), grew)
		}
	})
}
