package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	stdnet "net"
	"sync"
	"time"

	"asynctp/internal/simnet"
)

// Config describes one process's view of the wire: which sites it
// hosts (Listen) and where every remote site lives (Peers). A site in
// neither map is unknown — Send returns simnet.ErrUnknownSite, exactly
// as the simulated network does for an unregistered site.
type Config struct {
	// Listen maps each LOCAL site to its listen address. "127.0.0.1:0"
	// allocates a free port; Addr reports the bound address so a parent
	// process can collect and redistribute it to peers.
	Listen map[simnet.SiteID]string
	// Peers maps each REMOTE site to its dial address.
	Peers map[simnet.SiteID]string

	// DialBackoff is the initial redial delay after a failed connect
	// (default 10ms), doubling per attempt up to MaxBackoff (default
	// 1s). Backoff resets on a successful dial.
	DialBackoff time.Duration
	MaxBackoff  time.Duration

	// SendQueue is the per-peer outbound frame queue depth (default
	// 1024). A full queue sheds the frame — counted Dropped, recovered
	// by queue-layer retransmission — instead of blocking the pipeline.
	SendQueue int

	// WAN emulation knobs, meaningful on loopback where real latency is
	// ~0: the same loss/latency/jitter model as the simulated network,
	// applied per frame (loss at send, delay before delivery).
	LossRate float64
	Latency  time.Duration
	Jitter   float64
	Seed     int64
}

// peer is one outbound destination: a frame queue drained by a writer
// goroutine that owns the connection, redials with capped backoff, and
// coalesces — the buffered writer is flushed only when the queue goes
// momentarily empty, so a burst of frames rides one syscall.
type peer struct {
	to    simnet.SiteID
	addr  string
	sendq chan []byte

	mu        sync.Mutex
	conn      stdnet.Conn
	halfWrite bool // one-shot: write half the next frame, then kill the conn
}

func (p *peer) getConn() stdnet.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

func (p *peer) setConn(c stdnet.Conn) {
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
}

// closeConn tears down the live connection (if any); the writer
// redials on the next frame.
func (p *peer) closeConn() {
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peer) takeHalfWrite() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	hw := p.halfWrite
	p.halfWrite = false
	return hw
}

// Net carries simnet.Message frames over real TCP connections. It
// implements simnet.Net, so a site.Cluster built on it runs the
// identical chopped-transaction pipeline as one built on the simulated
// network — including fault schedules: SetDown and SetPartitioned drop
// frames at both ends and kill live connections, SetLossRate and
// SetLatency emulate a lossy, slow WAN on loopback.
//
// Local sites dial their own listener too: every frame crosses a real
// socket, so a single-process loopback cluster exercises the full
// codec + reconnect machinery the multi-process deployment uses.
type Net struct {
	cfg   Config
	stop  chan struct{}
	wg    sync.WaitGroup
	peers map[simnet.SiteID]*peer // all destinations, local and remote

	mu          sync.Mutex
	rng         *rand.Rand
	lossRate    float64
	baseLatency time.Duration
	jitter      float64
	inboxes     map[simnet.SiteID]chan simnet.Message
	listeners   map[simnet.SiteID]stdnet.Listener
	inbound     map[stdnet.Conn]struct{}
	down        map[simnet.SiteID]bool
	partitioned map[[2]simnet.SiteID]bool
	stats       simnet.Stats
	closed      bool
}

var _ simnet.Net = (*Net)(nil)

// New builds the transport. Writer goroutines for remote peers start
// immediately (they dial lazily, on the first frame); local sites
// attach via AddSite.
func New(cfg Config) *Net {
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = 1024
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	t := &Net{
		cfg:         cfg,
		stop:        make(chan struct{}),
		peers:       make(map[simnet.SiteID]*peer),
		rng:         rand.New(rand.NewSource(seed)),
		lossRate:    cfg.LossRate,
		baseLatency: cfg.Latency,
		jitter:      cfg.Jitter,
		inboxes:     make(map[simnet.SiteID]chan simnet.Message),
		listeners:   make(map[simnet.SiteID]stdnet.Listener),
		inbound:     make(map[stdnet.Conn]struct{}),
		down:        make(map[simnet.SiteID]bool),
		partitioned: make(map[[2]simnet.SiteID]bool),
	}
	t.stats.PerLink = make(map[string]uint64)
	for id, addr := range cfg.Peers {
		t.addPeer(id, addr)
	}
	return t
}

func (t *Net) addPeer(id simnet.SiteID, addr string) *peer {
	p := &peer{to: id, addr: addr, sendq: make(chan []byte, t.cfg.SendQueue)}
	t.peers[id] = p
	t.wg.Add(1)
	go t.runPeer(p)
	return p
}

// AddSite starts the listener for a local site and returns its inbox.
// The site also becomes a dialable destination for its process-local
// neighbors (self-dial through loopback).
func (t *Net) AddSite(id simnet.SiteID) (<-chan simnet.Message, error) {
	addr, ok := t.cfg.Listen[id]
	if !ok {
		return nil, fmt.Errorf("transport: no listen address for site %q", id)
	}
	l, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if _, dup := t.inboxes[id]; dup {
		t.mu.Unlock()
		l.Close()
		return nil, fmt.Errorf("transport: site %q already exists", id)
	}
	ch := make(chan simnet.Message, 256)
	t.inboxes[id] = ch
	t.listeners[id] = l
	if _, dialable := t.peers[id]; !dialable {
		t.addPeer(id, l.Addr().String())
	}
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(l)
	return ch, nil
}

// Addr reports the bound listen address of a local site ("" if the
// site was never added). With Listen entries of "127.0.0.1:0" this is
// how a parent process learns the kernel-assigned ports.
func (t *Net) Addr(id simnet.SiteID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.listeners[id]; ok {
		return l.Addr().String()
	}
	return ""
}

func linkKey(a, b simnet.SiteID) [2]simnet.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]simnet.SiteID{a, b}
}

func payloadCount(msg simnet.Message) uint64 {
	if f, ok := msg.Payload.(simnet.Frame); ok {
		if n := f.FrameLen(); n > 0 {
			return uint64(n)
		}
	}
	return 1
}

// Send frames msg and hands it to the destination peer's writer. The
// failure model mirrors the simulated network frame for frame: unknown
// destinations error, down/partitioned destinations count Dropped and
// return simnet.ErrUnreachable, the loss knob sheds silently, and a
// full send queue sheds silently (backpressure as loss — queue-layer
// retransmission recovers both).
func (t *Net) Send(msg simnet.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	p, ok := t.peers[msg.To]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %q", simnet.ErrUnknownSite, msg.To)
	}
	t.stats.Sent++
	if t.down[msg.To] || t.down[msg.From] || t.partitioned[linkKey(msg.From, msg.To)] {
		t.stats.Dropped++
		t.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", simnet.ErrUnreachable, msg.From, msg.To)
	}
	if t.lossRate > 0 && t.rng.Float64() < t.lossRate {
		// Silent in-flight loss: the sender believes it sent.
		t.stats.Dropped++
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()

	frame, err := EncodeFrame(msg)
	if err != nil {
		t.mu.Lock()
		t.stats.Dropped++
		t.mu.Unlock()
		return err
	}
	select {
	case p.sendq <- frame:
	default:
		t.mu.Lock()
		t.stats.Dropped++
		t.mu.Unlock()
	}
	return nil
}

// runPeer owns one outbound connection. Frames arrive on sendq; the
// writer dials on demand with capped exponential backoff, writes
// through a buffered writer, and flushes only when the queue goes
// momentarily empty — a burst of retransmits or batch frames coalesces
// into one syscall. A write error costs the frame in hand (it is
// in-flight loss; the queue layer retransmits) and triggers a redial.
func (t *Net) runPeer(p *peer) {
	defer t.wg.Done()
	defer p.closeConn()
	backoff := t.cfg.DialBackoff
	var bw *bufio.Writer
	for {
		var frame []byte
		select {
		case <-t.stop:
			if bw != nil {
				bw.Flush()
			}
			return
		case frame = <-p.sendq:
		}
		for {
			if p.getConn() == nil {
				conn, err := stdnet.DialTimeout("tcp", p.addr, time.Second)
				if err != nil {
					select {
					case <-t.stop:
						return
					case <-time.After(backoff):
					}
					backoff *= 2
					if backoff > t.cfg.MaxBackoff {
						backoff = t.cfg.MaxBackoff
					}
					continue
				}
				backoff = t.cfg.DialBackoff
				p.setConn(conn)
				bw = bufio.NewWriterSize(conn, 64<<10)
			}
			if p.takeHalfWrite() {
				// Test hook: a half-written frame, then the conn dies —
				// the receiver sees a torn frame and must resynchronize
				// on a fresh connection, never deliver garbage.
				bw.Flush()
				if c := p.getConn(); c != nil {
					c.Write(frame[:len(frame)/2])
				}
				p.closeConn()
				bw = nil
				break
			}
			if _, err := bw.Write(frame); err != nil {
				p.closeConn()
				bw = nil
				break
			}
			if len(p.sendq) == 0 {
				if err := bw.Flush(); err != nil {
					p.closeConn()
					bw = nil
				}
			}
			break
		}
	}
}

func (t *Net) acceptLoop(l stdnet.Listener) {
	defer t.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readConn(conn)
	}
}

// readConn drains frames off one inbound connection. Any framing error
// — torn frame, bad CRC, oversized length — kills the connection; the
// peer's writer redials and the queue layer retransmits whatever was
// in flight. Corruption is thereby converted into frame loss, the
// failure the pipeline already masks.
func (t *Net) readConn(conn stdnet.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		msg, err := ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				_ = err // corrupt or torn frame: drop the conn, rely on retransmit
			}
			return
		}
		t.deliver(msg)
	}
}

// deliver applies the WAN-emulation delay and the same delivery-time
// reachability re-check as the simulated network: a site that went
// down or a link that partitioned while the frame was "in flight"
// loses it.
func (t *Net) deliver(msg simnet.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	inbox, ok := t.inboxes[msg.To]
	if !ok {
		t.mu.Unlock()
		return
	}
	delay := t.baseLatency
	if t.jitter > 0 && delay > 0 {
		delay += time.Duration(t.rng.Float64() * t.jitter * float64(delay))
	}
	t.wg.Add(1)
	t.mu.Unlock()

	fn := func() {
		defer t.wg.Done()
		t.mu.Lock()
		blocked := t.down[msg.To] || t.down[msg.From] ||
			t.partitioned[linkKey(msg.From, msg.To)] || t.closed
		if blocked {
			t.stats.Dropped++
			t.mu.Unlock()
			return
		}
		t.stats.Delivered++
		t.stats.Payloads += payloadCount(msg)
		t.stats.PerLink[string(msg.From)+"->"+string(msg.To)]++
		t.mu.Unlock()
		select {
		case inbox <- msg:
		case <-t.stop:
		}
	}
	if delay == 0 {
		fn()
	} else {
		time.AfterFunc(delay, fn)
	}
}

// SetDown marks a site crashed or recovered. Going down kills the live
// outbound connection to the site (its frames die with it); frames
// addressed to or from a down site are dropped at send and delivery.
func (t *Net) SetDown(id simnet.SiteID, down bool) {
	t.mu.Lock()
	t.down[id] = down
	p := t.peers[id]
	t.mu.Unlock()
	if down && p != nil {
		p.closeConn()
	}
}

// SetPartitioned cuts or heals the undirected link between two sites.
// Cutting kills the live outbound connections both ways; while cut,
// frames between the pair are dropped at send and delivery.
func (t *Net) SetPartitioned(a, b simnet.SiteID, cut bool) {
	t.mu.Lock()
	t.partitioned[linkKey(a, b)] = cut
	pa, pb := t.peers[a], t.peers[b]
	t.mu.Unlock()
	if cut {
		if pa != nil {
			pa.closeConn()
		}
		if pb != nil {
			pb.closeConn()
		}
	}
}

// SetLossRate changes the emulated silent frame-loss fraction [0, 1].
func (t *Net) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.mu.Lock()
	t.lossRate = rate
	t.mu.Unlock()
}

// SetLatency changes the emulated one-way delivery delay and jitter.
func (t *Net) SetLatency(base time.Duration, jitter float64) {
	if base < 0 {
		base = 0
	}
	if jitter < 0 {
		jitter = 0
	}
	t.mu.Lock()
	t.baseLatency = base
	t.jitter = jitter
	t.mu.Unlock()
}

// Stats snapshots the counters. Sent/Dropped count at this process's
// send side, Delivered/Payloads/PerLink at its receive side; on a
// single-process loopback cluster the two sides see the same frames,
// in a multi-process deployment each process reports its own half.
func (t *Net) Stats() simnet.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stats
	out.PerLink = make(map[string]uint64, len(t.stats.PerLink))
	for k, v := range t.stats.PerLink {
		out.PerLink[k] = v
	}
	return out
}

// KillConn tears down the live outbound connection to a site without
// marking anything unreachable: the transport must redial (capped
// backoff) and the queue layer must retransmit whatever the dead
// connection swallowed. Fault harness hook.
func (t *Net) KillConn(to simnet.SiteID) {
	t.mu.Lock()
	p := t.peers[to]
	t.mu.Unlock()
	if p != nil {
		p.closeConn()
	}
}

// InjectHalfWrite arms a one-shot fault on the outbound connection to
// a site: the next frame is written only halfway, then the connection
// dies — the receiver-side torn-frame handling and the sender-side
// reconnect both get exercised. Fault harness hook.
func (t *Net) InjectHalfWrite(to simnet.SiteID) {
	t.mu.Lock()
	p := t.peers[to]
	t.mu.Unlock()
	if p != nil {
		p.mu.Lock()
		p.halfWrite = true
		p.mu.Unlock()
	}
}

// Close stops the wire: no new sends, listeners and connections torn
// down, then waits for the writer/reader/delivery goroutines. Inbox
// channels stay open so receivers drain without panics.
func (t *Net) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	listeners := make([]stdnet.Listener, 0, len(t.listeners))
	for _, l := range t.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]stdnet.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	close(t.stop)
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
}
