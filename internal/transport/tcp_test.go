package transport

import (
	"context"
	"errors"
	"fmt"
	stdnet "net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asynctp/internal/queue"
	"asynctp/internal/simnet"
)

// loopback builds a single-process transport hosting the given sites,
// every frame crossing a real TCP loopback socket.
func loopback(t *testing.T, sites ...simnet.SiteID) (*Net, map[simnet.SiteID]<-chan simnet.Message) {
	t.Helper()
	listen := make(map[simnet.SiteID]string, len(sites))
	for _, s := range sites {
		listen[s] = "127.0.0.1:0"
	}
	tn := New(Config{Listen: listen, DialBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	inboxes := make(map[simnet.SiteID]<-chan simnet.Message, len(sites))
	for _, s := range sites {
		ch, err := tn.AddSite(s)
		if err != nil {
			t.Fatalf("AddSite(%s): %v", s, err)
		}
		inboxes[s] = ch
	}
	t.Cleanup(tn.Close)
	return tn, inboxes
}

func recvOne(t *testing.T, inbox <-chan simnet.Message, within time.Duration) simnet.Message {
	t.Helper()
	select {
	case msg := <-inbox:
		return msg
	case <-time.After(within):
		t.Fatalf("no message within %v", within)
		return simnet.Message{}
	}
}

func TestTCPDelivery(t *testing.T) {
	tn, inboxes := loopback(t, "A", "B")
	want := simnet.Message{From: "A", To: "B", Kind: "test", Payload: "hello"}
	if err := tn.Send(want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got := recvOne(t, inboxes["B"], 2*time.Second)
	if got.From != "A" || got.To != "B" || got.Payload != "hello" {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	st := tn.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Payloads != 1 {
		t.Fatalf("stats %+v, want 1 sent/delivered/payload", st)
	}
	if st.PerLink["A->B"] != 1 {
		t.Fatalf("per-link %v, want A->B: 1", st.PerLink)
	}
}

func TestTCPUnknownAndUnreachable(t *testing.T) {
	tn, _ := loopback(t, "A", "B")
	if err := tn.Send(simnet.Message{From: "A", To: "Z", Kind: "test"}); !errors.Is(err, simnet.ErrUnknownSite) {
		t.Fatalf("unknown site: got %v", err)
	}
	tn.SetDown("B", true)
	if err := tn.Send(simnet.Message{From: "A", To: "B", Kind: "test"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("down site: got %v", err)
	}
	tn.SetDown("B", false)
	tn.SetPartitioned("A", "B", true)
	if err := tn.Send(simnet.Message{From: "A", To: "B", Kind: "test"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("partitioned link: got %v", err)
	}
}

// TestTCPReconnectBackoff sends toward a site whose listener does not
// exist yet: the writer must keep redialing with capped backoff and
// deliver the frame once the listener appears — a site restart seen
// from its peer.
func TestTCPReconnectBackoff(t *testing.T) {
	// Reserve a port, then free it for the late listener.
	l, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	sender := New(Config{
		Listen:      map[simnet.SiteID]string{"A": "127.0.0.1:0"},
		Peers:       map[simnet.SiteID]string{"B": addr},
		DialBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	defer sender.Close()
	if _, err := sender.AddSite("A"); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(simnet.Message{From: "A", To: "B", Kind: "test", Payload: "late"}); err != nil {
		t.Fatalf("send: %v", err)
	}

	time.Sleep(100 * time.Millisecond) // let several dial attempts fail
	receiver := New(Config{Listen: map[simnet.SiteID]string{"B": addr}})
	defer receiver.Close()
	inbox, err := receiver.AddSite("B")
	if err != nil {
		t.Fatalf("late listener: %v", err)
	}
	got := recvOne(t, inbox, 5*time.Second)
	if got.Payload != "late" {
		t.Fatalf("got %+v", got)
	}
}

// endpoint is one queue.Manager riding the transport, with its inbox
// pump. BatchFrames seen with piggybacked acks are counted so tests
// can assert the piggyback path survived a reconnect.
type endpoint struct {
	mgr        *queue.Manager
	piggyAcked atomic.Int64
}

func newEndpoint(t *testing.T, tn *Net, site simnet.SiteID, inbox <-chan simnet.Message) *endpoint {
	t.Helper()
	ep := &endpoint{mgr: queue.NewManager(site, tn, 20*time.Millisecond)}
	t.Cleanup(ep.mgr.Close)
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		for {
			select {
			case msg := <-inbox:
				if bf, ok := msg.Payload.(queue.BatchFrame); ok && len(bf.Acks) > 0 {
					ep.piggyAcked.Add(int64(len(bf.Acks)))
				}
				ep.mgr.Handle(msg)
			case <-done:
				return
			}
		}
	}()
	return ep
}

func (ep *endpoint) send(to simnet.SiteID, queueName string, payloads ...string) {
	b := ep.mgr.Buffer()
	for _, p := range payloads {
		b.Enqueue(to, queueName, p)
	}
	ep.mgr.CommitSend(b)
}

// consume dequeues until `want` payloads arrived or the deadline hits,
// failing on any duplicate — the exactly-once assertion.
func (ep *endpoint) consume(t *testing.T, queueName string, want int, within time.Duration) map[string]int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	got := make(map[string]int)
	n := 0
	for n < want {
		batch, err := ep.mgr.DequeueBatch(ctx, queueName, 64)
		if err != nil {
			t.Fatalf("after %d/%d payloads: %v", n, want, err)
		}
		for _, d := range batch.Deliveries {
			s := d.Msg.Payload.(string)
			got[s]++
			if got[s] > 1 {
				t.Fatalf("payload %q delivered %d times", s, got[s])
			}
			n++
		}
		batch.Ack()
	}
	return got
}

func waitOutboxDrained(t *testing.T, ep *endpoint, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for ep.mgr.OutboxLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox still holds %d unacked messages after %v", ep.mgr.OutboxLen(), within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPExactlyOnceAcrossConnKills floods one direction while the
// live connections keep dying mid-batch. Retransmission redelivers
// whatever each dead connection swallowed; the watermark dedup must
// shave the redeliveries back to exactly one application delivery per
// message, and every message must eventually be acknowledged.
func TestTCPExactlyOnceAcrossConnKills(t *testing.T) {
	tn, inboxes := loopback(t, "A", "B")
	a := newEndpoint(t, tn, "A", inboxes["A"])
	b := newEndpoint(t, tn, "B", inboxes["B"])

	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			a.send("B", "pieces", fmt.Sprintf("m-%03d", i))
			if i%20 == 10 {
				tn.KillConn("B") // die mid-stream, batches in flight
			}
			if i%50 == 25 {
				tn.InjectHalfWrite("B") // next frame torn on the wire
			}
			time.Sleep(time.Millisecond)
		}
	}()

	got := b.consume(t, "pieces", total, 20*time.Second)
	wg.Wait()
	if len(got) != total {
		t.Fatalf("got %d distinct payloads, want %d", len(got), total)
	}
	waitOutboxDrained(t, a, 10*time.Second)
}

// TestTCPAckPiggybackAfterReconnect kills both directions of a
// bidirectional flow, then keeps the reverse traffic going: the acks
// for the forward messages must ride the reconnected reverse stream's
// BatchFrames (piggyback), observed at the forward sender's inbox, and
// drain its outbox.
func TestTCPAckPiggybackAfterReconnect(t *testing.T) {
	tn, inboxes := loopback(t, "A", "B")
	a := newEndpoint(t, tn, "A", inboxes["A"])
	b := newEndpoint(t, tn, "B", inboxes["B"])

	// Warm both directions so both ends hold live connections.
	a.send("B", "pieces", "warm-a")
	b.send("A", "back", "warm-b")
	b.consume(t, "pieces", 1, 5*time.Second)
	a.consume(t, "back", 1, 5*time.Second)

	tn.KillConn("A")
	tn.KillConn("B")
	before := a.piggyAcked.Load()

	const rounds = 30
	for i := 0; i < rounds; i++ {
		a.send("B", "pieces", fmt.Sprintf("fwd-%02d", i))
		b.send("A", "back", fmt.Sprintf("rev-%02d", i))
		time.Sleep(2 * time.Millisecond)
	}
	b.consume(t, "pieces", rounds, 10*time.Second)
	a.consume(t, "back", rounds, 10*time.Second)
	waitOutboxDrained(t, a, 10*time.Second)
	waitOutboxDrained(t, b, 10*time.Second)

	if a.piggyAcked.Load() == before {
		t.Fatalf("no acks piggybacked on the reconnected reverse stream (A saw %d before, %d after)",
			before, a.piggyAcked.Load())
	}
}

// TestTCPHalfWrittenFrame arms the half-write fault with no other
// traffic: the lone torn frame must be retransmitted on a fresh
// connection and delivered exactly once.
func TestTCPHalfWrittenFrame(t *testing.T) {
	tn, inboxes := loopback(t, "A", "B")
	a := newEndpoint(t, tn, "A", inboxes["A"])
	b := newEndpoint(t, tn, "B", inboxes["B"])

	tn.InjectHalfWrite("B")
	a.send("B", "pieces", "torn-once")
	got := b.consume(t, "pieces", 1, 10*time.Second)
	if got["torn-once"] != 1 {
		t.Fatalf("got %v", got)
	}
	waitOutboxDrained(t, a, 10*time.Second)
}

// TestTCPLossAndLatencyKnobs exercises the WAN-emulation path: under
// heavy injected loss the queue layer still gets everything through,
// and a latency setting visibly delays delivery.
func TestTCPLossAndLatencyKnobs(t *testing.T) {
	tn, inboxes := loopback(t, "A", "B", "C") // C has no endpoint: a raw inbox
	a := newEndpoint(t, tn, "A", inboxes["A"])
	b := newEndpoint(t, tn, "B", inboxes["B"])

	tn.SetLossRate(0.3)
	const total = 60
	for i := 0; i < total; i++ {
		a.send("B", "pieces", fmt.Sprintf("lossy-%02d", i))
		time.Sleep(time.Millisecond) // outlive the coalescing window: many frames, many loss draws
	}
	b.consume(t, "pieces", total, 20*time.Second)
	tn.SetLossRate(0)
	waitOutboxDrained(t, a, 10*time.Second)
	if st := tn.Stats(); st.Dropped == 0 {
		t.Fatalf("loss knob dropped nothing: %+v", st)
	}

	tn.SetLatency(50*time.Millisecond, 0)
	start := time.Now()
	if err := tn.Send(simnet.Message{From: "A", To: "C", Kind: "test", Payload: "slow"}); err != nil {
		t.Fatal(err)
	}
	if msg := recvOne(t, inboxes["C"], 5*time.Second); msg.Payload != "slow" {
		t.Fatalf("got %+v", msg)
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("latency knob ignored: delivery took %v", took)
	}
}
