package txn

import "time"

// spinThreshold is the delay below which SimWork busy-spins instead of
// sleeping. On mainstream Linux kernels time.Sleep has ~1ms of timer
// slack, so a "50µs" simulated operation would actually park the
// goroutine for 1–3ms — while it holds locks. Benchmarks that model
// per-operation work (the paper's environment, where blocking on locks
// is what limits throughput) then measure kernel timer granularity
// convoys instead of the concurrency control under test. Spinning burns
// one core for the duration, which is exactly the semantics "this
// operation performs d of CPU work".
const spinThreshold = time.Millisecond

// SimWork simulates d of per-operation work. Sub-millisecond delays
// busy-spin (accurate to the scheduler quantum, preemptible since Go
// 1.14's async preemption); longer delays sleep, since at that scale
// timer slack no longer distorts the measurement and burning a core
// would. Zero and negative delays return immediately.
func SimWork(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= spinThreshold {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		// Busy-spin: the point is to occupy the CPU like real work would.
	}
}
