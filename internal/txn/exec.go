package txn

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
)

// ErrRollback is the business rollback: a rollback statement fired. Unlike
// system aborts (deadlock, divergence refusal) a business rollback must
// not be retried.
var ErrRollback = errors.New("txn: rollback statement fired")

// IDGen hands out unique transaction owners.
type IDGen struct {
	next atomic.Int64
}

// Next returns a fresh owner ID (positive, dense).
func (g *IDGen) Next() lock.Owner {
	return lock.Owner(g.next.Add(1))
}

// SetBase makes subsequent IDs mint from base+1 upward. A process
// hosting several generators that feed one shared consumer (ledger,
// trace, dedup table) gives each a disjoint base so their IDs never
// collide. Call before the generator is first used.
func (g *IDGen) SetBase(base int64) {
	g.next.Store(base)
}

// ReadRec is one read observed by a transaction, in execution order.
type ReadRec struct {
	Key   storage.Key
	Value metric.Value
}

// Outcome describes one finished execution attempt.
type Outcome struct {
	// Owner is the transaction identity used for locks and history.
	Owner lock.Owner
	// Committed reports whether the attempt committed.
	Committed bool
	// Reads are the values observed, in order.
	Reads []ReadRec
	// Writes are the final values written (one per key, last-writer-wins),
	// empty when the attempt aborted.
	Writes []storage.Write
}

// ReadValue returns the last value this execution read for key.
func (o *Outcome) ReadValue(key storage.Key) (metric.Value, bool) {
	for i := len(o.Reads) - 1; i >= 0; i-- {
		if o.Reads[i].Key == key {
			return o.Reads[i].Value, true
		}
	}
	return 0, false
}

// SumReads totals every read (the audit transactions' result).
func (o *Outcome) SumReads() metric.Value {
	var total metric.Value
	for _, r := range o.Reads {
		total += r.Value
	}
	return total
}

// Observer receives execution events; the history recorder implements it.
// A nil Observer is valid and observes nothing. Write carries the op's
// commutativity so the serializability checker can apply the same
// conflict model as the chopper (commuting increments do not conflict).
type Observer interface {
	Begin(owner lock.Owner, name string, class Class)
	Read(owner lock.Owner, key storage.Key, value metric.Value)
	Write(owner lock.Owner, key storage.Key, old, new metric.Value, commutative bool)
	Commit(owner lock.Owner)
	Abort(owner lock.Owner, reason error)
}

// Exec runs programs as atomic transactions under strict two-phase locking
// against one store. Plugging a divergence-control arbiter into the lock
// manager turns the same executor into a divergence-controlled one.
type Exec struct {
	store   *storage.Store
	locks   *lock.Manager
	obs     Observer
	opDelay time.Duration
	step    StepHook
}

// NewExec builds an executor. obs may be nil.
func NewExec(store *storage.Store, locks *lock.Manager, obs Observer) *Exec {
	return &Exec{store: store, locks: locks, obs: obs}
}

// SetOpDelay makes every operation take d of simulated work while its
// lock is held. Zero (the default) disables it. Benchmarks use it to
// model the paper's environment, where operations take real time and
// blocking on locks is what limits throughput. Sub-millisecond delays
// busy-spin instead of sleeping (see SimWork) so the simulated work is
// actually d, not d plus kernel timer slack.
func (e *Exec) SetOpDelay(d time.Duration) { e.opDelay = d }

// SetStepHook installs a step hook consulted before every lock request,
// operation effect, and commit. Nil (the default) disables gating; the
// schedule explorer uses it to serialize execution deterministically.
func (e *Exec) SetStepHook(h StepHook) { e.step = h }

// stepTo gates one scheduling point when a hook is installed.
func (e *Exec) stepTo(owner lock.Owner, p *Program, op int, kind StepKind, key storage.Key, write bool) {
	if e.step != nil {
		e.step.OnStep(Step{Owner: owner, Program: p.Name, Op: op, Kind: kind, Key: key, Write: write})
	}
}

// Store returns the backing store.
func (e *Exec) Store() *storage.Store { return e.store }

// Locks returns the lock manager.
func (e *Exec) Locks() *lock.Manager { return e.locks }

// writeRec tracks one written key: its before-image (first write) and
// its latest value. A small slice with linear lookup beats two maps for
// the handful of keys a piece writes, and doubles as the commit batch.
type writeRec struct {
	key        storage.Key
	old, final metric.Value
}

// findWrite returns the index of key in recs, or -1.
func findWrite(recs []writeRec, key storage.Key) int {
	for i := range recs {
		if recs[i].key == key {
			return i
		}
	}
	return -1
}

// abort undoes writes (last before-images win in reverse), releases
// owner's locks, and reports the abort.
func (e *Exec) abort(owner lock.Owner, writes []writeRec, reason error) {
	for i := len(writes) - 1; i >= 0; i-- {
		e.store.Set(writes[i].key, writes[i].old)
	}
	e.locks.ReleaseAll(owner)
	if e.obs != nil {
		e.obs.Abort(owner, reason)
	}
}

// Run executes p atomically as owner. On success the outcome is committed
// and journaled. On failure all effects are undone and the error tells the
// caller whether to retry: lock.ErrDeadlock and context errors are system
// aborts (retryable); ErrRollback is a business rollback (final).
func (e *Exec) Run(ctx context.Context, owner lock.Owner, p *Program) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e.obs != nil {
		e.obs.Begin(owner, p.Name, p.Class())
	}
	out := &Outcome{Owner: owner}
	// Per-key write records (before-image + final value), allocated on
	// the first write so read-only transactions stay allocation-light.
	var writes []writeRec

	for i, op := range p.Ops {
		mode := lock.Shared
		if op.Kind == OpWrite {
			mode = lock.Exclusive
		}
		e.stepTo(owner, p, i, StepAcquire, op.Key, op.Kind == OpWrite)
		if err := e.locks.Acquire(ctx, owner, op.Key, mode); err != nil {
			e.abort(owner, writes, err)
			return out, fmt.Errorf("op %d on %q: %w", i, op.Key, err)
		}
		e.stepTo(owner, p, i, StepApply, op.Key, op.Kind == OpWrite)
		if e.opDelay > 0 {
			SimWork(e.opDelay)
		}
		old := e.store.Get(op.Key)
		if op.AbortIf != nil && op.AbortIf(old) {
			e.abort(owner, writes, ErrRollback)
			return out, fmt.Errorf("op %d on %q: %w", i, op.Key, ErrRollback)
		}
		switch op.Kind {
		case OpRead:
			if out.Reads == nil {
				out.Reads = make([]ReadRec, 0, len(p.Ops)-i)
			}
			out.Reads = append(out.Reads, ReadRec{Key: op.Key, Value: old})
			if e.obs != nil {
				e.obs.Read(owner, op.Key, old)
			}
		case OpWrite:
			if writes == nil {
				writes = make([]writeRec, 0, len(p.Ops)-i)
			}
			val := op.Update(old)
			e.store.Set(op.Key, val)
			if j := findWrite(writes, op.Key); j >= 0 {
				writes[j].final = val // keep the first before-image
			} else {
				writes = append(writes, writeRec{key: op.Key, old: old, final: val})
			}
			if e.obs != nil {
				e.obs.Write(owner, op.Key, old, val, op.Commutative)
			}
		}
	}

	// Commit: journal the batch, then release (strict 2PL holds all locks
	// to this point).
	e.stepTo(owner, p, -1, StepCommit, "", false)
	var batch []storage.Write
	if len(writes) > 0 {
		batch = make([]storage.Write, len(writes))
		for i, w := range writes {
			batch[i] = storage.Write{Key: w.key, Value: w.final}
		}
	}
	if err := e.store.Apply(batch); err != nil {
		e.abort(owner, writes, err)
		return out, fmt.Errorf("commit %q: %w", p.Name, err)
	}
	out.Writes = batch
	out.Committed = true
	e.locks.ReleaseAll(owner)
	if e.obs != nil {
		e.obs.Commit(owner)
	}
	return out, nil
}

// Retryable reports whether an execution error is a system abort worth
// retrying (deadlock or divergence refusal), as opposed to a business
// rollback or context end.
func Retryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock)
}

// RunWithRetry runs p, resubmitting on system aborts until it commits, the
// context ends, or a business rollback fires. It returns the number of
// aborted attempts alongside the final outcome. Each attempt uses a fresh
// owner from gen, matching the paper's process handler that "resubmits the
// piece until it commits".
func (e *Exec) RunWithRetry(ctx context.Context, gen *IDGen, p *Program) (*Outcome, int, error) {
	retries := 0
	for {
		out, err := e.Run(ctx, gen.Next(), p)
		if err == nil {
			return out, retries, nil
		}
		if !Retryable(err) || ctx.Err() != nil {
			return out, retries, err
		}
		retries++
	}
}
