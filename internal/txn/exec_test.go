package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
)

// event is one observer callback for assertion.
type event struct {
	kind  string
	owner lock.Owner
	key   storage.Key
	old   metric.Value
	val   metric.Value
}

// recorder is a test Observer.
type recorder struct {
	mu     sync.Mutex
	events []event
}

func (r *recorder) Begin(o lock.Owner, name string, c Class) {
	r.add(event{kind: "begin", owner: o})
}
func (r *recorder) Read(o lock.Owner, k storage.Key, v metric.Value) {
	r.add(event{kind: "read", owner: o, key: k, val: v})
}
func (r *recorder) Write(o lock.Owner, k storage.Key, old, v metric.Value, commutative bool) {
	r.add(event{kind: "write", owner: o, key: k, old: old, val: v})
}
func (r *recorder) Commit(o lock.Owner) { r.add(event{kind: "commit", owner: o}) }
func (r *recorder) Abort(o lock.Owner, err error) {
	r.add(event{kind: "abort", owner: o})
}

func (r *recorder) add(e event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recorder) kinds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, e := range r.events {
		out[i] = e.kind
	}
	return out
}

func newExecT(init map[storage.Key]metric.Value) (*Exec, *recorder) {
	rec := &recorder{}
	return NewExec(storage.NewFrom(init), lock.NewManager(), rec), rec
}

func TestRunCommitsTransfer(t *testing.T) {
	e, rec := newExecT(map[storage.Key]metric.Value{"x": 1000, "y": 500})
	xfer := MustProgram("xfer", AddOp("x", -100), AddOp("y", 100))
	out, err := e.Run(context.Background(), 1, xfer)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed {
		t.Fatal("not committed")
	}
	if got := e.Store().Get("x"); got != 900 {
		t.Errorf("x = %d, want 900", got)
	}
	if got := e.Store().Get("y"); got != 600 {
		t.Errorf("y = %d, want 600", got)
	}
	want := []string{"begin", "write", "write", "commit"}
	got := rec.kinds()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
	// Locks must be released at commit.
	if len(e.Locks().HeldKeys(1)) != 0 {
		t.Error("locks leaked after commit")
	}
}

func TestRunReadsObserveValues(t *testing.T) {
	e, _ := newExecT(map[storage.Key]metric.Value{"x": 10, "y": 20})
	audit := MustProgram("audit", ReadOp("x"), ReadOp("y"))
	out, err := e.Run(context.Background(), 2, audit)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.SumReads(); got != 30 {
		t.Errorf("SumReads = %d, want 30", got)
	}
	if v, ok := out.ReadValue("y"); !ok || v != 20 {
		t.Errorf("ReadValue(y) = %d, %v", v, ok)
	}
	if _, ok := out.ReadValue("zzz"); ok {
		t.Error("ReadValue on unread key reported ok")
	}
}

func TestBusinessRollbackUndoesWrites(t *testing.T) {
	e, rec := newExecT(map[storage.Key]metric.Value{"x": 50})
	// Withdraw 100 from x, but roll back on insufficient funds; the
	// predicate sees the pre-write value.
	p := MustProgram("withdraw",
		AddOp("staging", 1), // a write that must be undone
		WithAbortIf(AddOp("x", -100), func(v metric.Value) bool { return v < 100 }),
	)
	out, err := e.Run(context.Background(), 3, p)
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	if out.Committed {
		t.Error("outcome committed after rollback")
	}
	if got := e.Store().Get("staging"); got != 0 {
		t.Errorf("staging = %d after undo, want 0", got)
	}
	if got := e.Store().Get("x"); got != 50 {
		t.Errorf("x = %d after undo, want 50", got)
	}
	kinds := rec.kinds()
	if kinds[len(kinds)-1] != "abort" {
		t.Errorf("last event = %s, want abort", kinds[len(kinds)-1])
	}
	if Retryable(err) {
		t.Error("business rollback classified retryable")
	}
}

func TestRollbackNotTriggeredWhenFundsSuffice(t *testing.T) {
	e, _ := newExecT(map[storage.Key]metric.Value{"x": 500})
	p := MustProgram("withdraw",
		WithAbortIf(AddOp("x", -100), func(v metric.Value) bool { return v < 100 }))
	out, err := e.Run(context.Background(), 4, p)
	if err != nil || !out.Committed {
		t.Fatalf("err = %v committed = %v", err, out.Committed)
	}
	if got := e.Store().Get("x"); got != 400 {
		t.Errorf("x = %d, want 400", got)
	}
}

func TestDeadlockAbortUndoesAndIsRetryable(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"a": 1, "b": 2})
	locks := lock.NewManager()
	e := NewExec(store, locks, nil)

	// Owner 9 holds b exclusively and waits for a; txn 10 takes a then b.
	// The op delay keeps txn 10 inside its first op long enough for owner
	// 9 to queue up on "a", making txn 10 the one that closes the cycle
	// (and hence the deterministic victim).
	e.SetOpDelay(300 * time.Millisecond)
	if err := locks.Acquire(context.Background(), 9, "b", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	hold := make(chan error, 1)
	go func() {
		// Owner 9 waits on "a" after txn 10 grabs it, while txn 10 is
		// still sleeping in its first op.
		time.Sleep(50 * time.Millisecond)
		hold <- locks.Acquire(context.Background(), 9, "a", lock.Exclusive)
	}()
	p := MustProgram("t", AddOp("a", 10), AddOp("b", 10))
	_, err := e.Run(context.Background(), 10, p)
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !Retryable(err) {
		t.Error("deadlock not classified retryable")
	}
	// Write to "a" must be undone.
	if got := store.Get("a"); got != 1 {
		t.Errorf("a = %d after deadlock undo, want 1", got)
	}
	locks.ReleaseAll(9)
	if err := <-hold; err != nil {
		t.Fatal(err)
	}
}

func TestRunWithRetryEventuallyCommits(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"a": 0, "b": 0})
	locks := lock.NewManager()
	e := NewExec(store, locks, nil)
	gen := &IDGen{}

	// Two goroutines run opposite-order transfers; deadlocks resolve via
	// retry and both eventually commit.
	p1 := MustProgram("fwd", AddOp("a", 1), AddOp("b", 1))
	p2 := MustProgram("rev", AddOp("b", 1), AddOp("a", 1))
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for _, p := range []*Program{p1, p2} {
		wg.Add(1)
		go func(p *Program) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := e.RunWithRetry(context.Background(), gen, p); err != nil {
					errCh <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := store.Get("a"); got != 50 {
		t.Errorf("a = %d, want 50", got)
	}
	if got := store.Get("b"); got != 50 {
		t.Errorf("b = %d, want 50", got)
	}
}

func TestRunWithRetryStopsOnRollback(t *testing.T) {
	e, _ := newExecT(map[storage.Key]metric.Value{"x": 0})
	gen := &IDGen{}
	p := MustProgram("t", WithAbortIf(ReadOp("x"), func(metric.Value) bool { return true }))
	_, retries, err := e.RunWithRetry(context.Background(), gen, p)
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	if retries != 0 {
		t.Errorf("retries = %d, want 0", retries)
	}
}

func TestRunInvalidProgram(t *testing.T) {
	e, _ := newExecT(nil)
	bad := &Program{Name: "bad"}
	if _, err := e.Run(context.Background(), 1, bad); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestIDGenUnique(t *testing.T) {
	gen := &IDGen{}
	var wg sync.WaitGroup
	seen := sync.Map{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				id := gen.Next()
				if _, dup := seen.LoadOrStore(id, true); dup {
					t.Errorf("duplicate id %d", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCommitJournalsBatch(t *testing.T) {
	e, _ := newExecT(nil)
	p := MustProgram("t", AddOp("x", 5))
	if _, err := e.Run(context.Background(), 1, p); err != nil {
		t.Fatal(err)
	}
	j := e.Store().Journal()
	if len(j) != 1 || len(j[0].Writes) != 1 || j[0].Writes[0].Key != "x" || j[0].Writes[0].Value != 5 {
		t.Errorf("journal = %+v", j)
	}
	// Recovery must see the committed value.
	if got := e.Store().Recover().Get("x"); got != 5 {
		t.Errorf("recovered x = %d, want 5", got)
	}
}
