package txn

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
)

// modelRun interprets a program against a plain map with the same
// semantics the executor promises: sequential application, rollback
// predicates on the pre-write value, all-or-nothing.
func modelRun(state map[storage.Key]metric.Value, p *Program) (map[storage.Key]metric.Value, []metric.Value, bool) {
	next := make(map[storage.Key]metric.Value, len(state))
	for k, v := range state {
		next[k] = v
	}
	var reads []metric.Value
	for _, op := range p.Ops {
		old := next[op.Key]
		if op.AbortIf != nil && op.AbortIf(old) {
			return state, nil, false // rolled back: no effects
		}
		switch op.Kind {
		case OpRead:
			reads = append(reads, old)
		case OpWrite:
			next[op.Key] = op.Update(old)
		}
	}
	return next, reads, true
}

// randomProgram builds a deterministic random program over a tiny key
// space, possibly with a rollback predicate.
func randomProgram(rng *rand.Rand, name string) *Program {
	keys := []storage.Key{"k0", "k1", "k2"}
	n := rng.Intn(5) + 1
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, ReadOp(key))
		case 1:
			ops = append(ops, AddOp(key, metric.Value(rng.Intn(21)-10)))
		default:
			ops = append(ops, SetOp(key, metric.Value(rng.Intn(100))))
		}
	}
	if rng.Intn(4) == 0 {
		idx := rng.Intn(len(ops))
		floor := metric.Value(rng.Intn(50))
		ops[idx] = WithAbortIf(ops[idx], func(v metric.Value) bool { return v < floor })
	}
	return MustProgram(name, ops...)
}

// TestExecutorMatchesModel runs random programs sequentially through the
// executor and the reference interpreter; states and read values must
// agree at every step.
func TestExecutorMatchesModel(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		init := map[storage.Key]metric.Value{"k0": 50, "k1": 50, "k2": 50}
		store := storage.NewFrom(init)
		exec := NewExec(store, lock.NewManager(), nil)
		model := map[storage.Key]metric.Value{"k0": 50, "k1": 50, "k2": 50}

		for i := 0; i < int(steps%25)+1; i++ {
			p := randomProgram(rng, "p")
			wantState, wantReads, wantCommit := modelRun(model, p)
			out, err := exec.Run(context.Background(), lock.Owner(i+1), p)
			if wantCommit {
				if err != nil {
					t.Logf("seed %d step %d: unexpected err %v", seed, i, err)
					return false
				}
				if len(out.Reads) != len(wantReads) {
					return false
				}
				for j, r := range out.Reads {
					if r.Value != wantReads[j] {
						return false
					}
				}
			} else {
				if !errors.Is(err, ErrRollback) {
					t.Logf("seed %d step %d: want rollback, got %v", seed, i, err)
					return false
				}
			}
			model = wantState
			for k, v := range model {
				if store.Get(k) != v {
					t.Logf("seed %d step %d: %s = %d, model %d", seed, i, k, store.Get(k), v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
