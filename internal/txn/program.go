// Package txn defines transaction programs and the executor that runs a
// program (or a chopped piece of one) as a single atomic transaction.
//
// A Program is a declared list of operations over keys. Declaring the
// operation list — rather than running opaque code — is the paper's key
// assumption: chopping is an off-line technique that needs the full job
// stream, every access, and every rollback statement visible in the
// program text. The same declarations drive the runtime: write operations
// carry a declared delta bound (the paper's C-edge weight W_C, e.g. "a
// customer may withdraw at most $500/day"), which divergence control uses
// to price a conflict before granting it.
package txn

import (
	"errors"
	"fmt"
	"sort"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
)

// Class tells update epsilon-transactions from query-only ones. The paper
// focuses on environments where query ETs may read fuzzy data but update
// ETs stay serializable among themselves.
type Class int

// Transaction classes.
const (
	// Query is a read-only epsilon transaction.
	Query Class = iota + 1
	// Update is an epsilon transaction with at least one write.
	Update
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case Query:
		return "query"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// OpKind is the kind of one program operation.
type OpKind int

// Operation kinds.
const (
	// OpRead reads a key.
	OpRead OpKind = iota + 1
	// OpWrite reads a key and writes a new value derived from it.
	OpWrite
)

// UpdateFunc computes a written value from the current one.
type UpdateFunc func(metric.Value) metric.Value

// AbortPred decides, from the value just read, whether the transaction
// must roll back (a business rollback statement, e.g. "insufficient
// funds").
type AbortPred func(metric.Value) bool

// Op is one operation of a transaction program.
type Op struct {
	// Kind is OpRead or OpWrite.
	Kind OpKind
	// Key is the data item accessed.
	Key storage.Key
	// Update derives the new value for OpWrite. Nil for OpRead.
	Update UpdateFunc
	// Bound bounds |new - old| for OpWrite: the potential fuzziness a
	// conflict with this write can introduce (the C-edge weight). Writes
	// whose delta cannot be predicted carry metric.Infinite, which makes
	// divergence control treat conflicts on them as unabsorbable — the
	// upward-compatible degradation to plain concurrency control.
	Bound metric.Limit
	// AbortIf, when non-nil, is evaluated on the value read (for OpRead)
	// or the value about to be overwritten (for OpWrite); true rolls the
	// transaction back. Its presence marks a rollback statement for the
	// rollback-safety rule.
	AbortIf AbortPred
	// Commutative marks writes that commute with each other (increments:
	// AddOp). Two commutative writes to the same key do not conflict in
	// the chopping graph — the distinction Shasha et al. rely on to keep
	// concurrent transfers choppable. They still serialize through
	// exclusive locks at runtime; commutativity only says the resulting
	// state and the values seen by later readers do not depend on their
	// order.
	Commutative bool
}

// HasRollback reports whether the op contains a rollback statement.
func (o Op) HasRollback() bool { return o.AbortIf != nil }

// ReadOp reads key.
func ReadOp(key storage.Key) Op {
	return Op{Kind: OpRead, Key: key}
}

// AddOp adds delta to key. Its declared bound is |delta| exactly, and it
// commutes with other AddOps on the same key.
func AddOp(key storage.Key, delta metric.Value) Op {
	return Op{
		Kind:        OpWrite,
		Key:         key,
		Update:      func(old metric.Value) metric.Value { return old + delta },
		Bound:       metric.LimitOf(metric.Distance(delta, 0)),
		Commutative: true,
	}
}

// SetOp assigns key := value. Without knowledge of the old value the
// delta is unbounded, so the declared bound is ∞; use TransformOp to
// declare a tighter one.
func SetOp(key storage.Key, value metric.Value) Op {
	return Op{
		Kind:   OpWrite,
		Key:    key,
		Update: func(metric.Value) metric.Value { return value },
		Bound:  metric.Infinite,
	}
}

// TransformOp writes f(old) to key, declaring bound on |f(old) - old|.
func TransformOp(key storage.Key, f UpdateFunc, bound metric.Limit) Op {
	return Op{Kind: OpWrite, Key: key, Update: f, Bound: bound}
}

// WithAbortIf returns o with a rollback predicate attached.
func WithAbortIf(o Op, pred AbortPred) Op {
	o.AbortIf = pred
	return o
}

// Program is a declared transaction: a name, an operation list, and the
// ε-spec Limit_t the application assigned to it.
type Program struct {
	// Name identifies the program in reports and chopping graphs.
	Name string
	// Ops is the operation list, in program-text order.
	Ops []Op
	// Spec is the ε-spec (import and export inconsistency limits).
	Spec metric.Spec
}

// NewProgram builds a validated program. Defaults: a strict ε-spec
// (classic serializability).
func NewProgram(name string, ops ...Op) (*Program, error) {
	p := &Program{Name: name, Ops: ops, Spec: metric.Strict}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is NewProgram that panics on invalid input; for declaring
// fixed workloads and tests.
func MustProgram(name string, ops ...Op) *Program {
	p, err := NewProgram(name, ops...)
	if err != nil {
		panic(err)
	}
	return p
}

// WithSpec returns a shallow copy of p with ε-spec s.
func (p *Program) WithSpec(s metric.Spec) *Program {
	q := *p
	q.Spec = s
	return &q
}

// Validate checks structural invariants.
func (p *Program) Validate() error {
	if p.Name == "" {
		return errors.New("txn: program needs a name")
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("txn: program %q has no operations", p.Name)
	}
	for i, op := range p.Ops {
		switch op.Kind {
		case OpRead:
			if op.Update != nil {
				return fmt.Errorf("txn: %q op %d: read with update func", p.Name, i)
			}
		case OpWrite:
			if op.Update == nil {
				return fmt.Errorf("txn: %q op %d: write without update func", p.Name, i)
			}
		default:
			return fmt.Errorf("txn: %q op %d: bad kind %d", p.Name, i, op.Kind)
		}
		if op.Key == "" {
			return fmt.Errorf("txn: %q op %d: empty key", p.Name, i)
		}
	}
	return nil
}

// Class derives the program's class from its text: any write makes it an
// update ET.
func (p *Program) Class() Class {
	for _, op := range p.Ops {
		if op.Kind == OpWrite {
			return Update
		}
	}
	return Query
}

// ReadSet returns the keys read (including read-before-write), sorted.
func (p *Program) ReadSet() []storage.Key { return p.keySet(func(Op) bool { return true }) }

// WriteSet returns the keys written, sorted.
func (p *Program) WriteSet() []storage.Key {
	return p.keySet(func(o Op) bool { return o.Kind == OpWrite })
}

func (p *Program) keySet(include func(Op) bool) []storage.Key {
	set := make(map[storage.Key]struct{})
	for _, op := range p.Ops {
		if include(op) {
			set[op.Key] = struct{}{}
		}
	}
	keys := make([]storage.Key, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// WriteBound returns the total declared delta bound of p's writes to key:
// the worst-case fuzziness a single conflicting reader of key can import
// from one execution of p. Programs that never write key have bound 0.
func (p *Program) WriteBound(key storage.Key) metric.Limit {
	total := metric.Zero
	for _, op := range p.Ops {
		if op.Kind == OpWrite && op.Key == key {
			total = total.AddLimit(op.Bound)
		}
	}
	return total
}

// HasRollback reports whether any op carries a rollback statement.
func (p *Program) HasRollback() bool {
	for _, op := range p.Ops {
		if op.HasRollback() {
			return true
		}
	}
	return false
}

// LastRollbackIndex returns the index of the last op with a rollback
// statement, or -1. Rollback-safety requires every piece boundary to fall
// after this index (all rollbacks in the first piece).
func (p *Program) LastRollbackIndex() int {
	last := -1
	for i, op := range p.Ops {
		if op.HasRollback() {
			last = i
		}
	}
	return last
}

// OpsConflict reports whether two operations conflict — i.e. do not
// commute: same key, at least one write, and not both commutative writes.
// Read/write and write/write pairs conflict unless both sides are
// commuting increments.
func OpsConflict(a, b Op) bool {
	if a.Key != b.Key {
		return false
	}
	if a.Kind != OpWrite && b.Kind != OpWrite {
		return false
	}
	if a.Kind == OpWrite && b.Kind == OpWrite && a.Commutative && b.Commutative {
		return false
	}
	return true
}

// Conflicts reports whether any op of p conflicts with any op of q.
func (p *Program) Conflicts(q *Program) bool {
	for _, a := range p.Ops {
		for _, b := range q.Ops {
			if OpsConflict(a, b) {
				return true
			}
		}
	}
	return false
}
