package txn

import (
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
)

func TestOpConstructors(t *testing.T) {
	r := ReadOp("x")
	if r.Kind != OpRead || r.Key != "x" || r.Update != nil {
		t.Errorf("ReadOp = %+v", r)
	}
	a := AddOp("x", -250)
	if a.Kind != OpWrite || a.Bound.Cmp(metric.LimitOf(250)) != 0 {
		t.Errorf("AddOp bound = %s, want 250", a.Bound)
	}
	if got := a.Update(1000); got != 750 {
		t.Errorf("AddOp update = %d, want 750", got)
	}
	s := SetOp("x", 7)
	if !s.Bound.IsInfinite() {
		t.Errorf("SetOp bound = %s, want inf", s.Bound)
	}
	if got := s.Update(123); got != 7 {
		t.Errorf("SetOp update = %d, want 7", got)
	}
	tr := TransformOp("x", func(v metric.Value) metric.Value { return v * 11 / 10 }, metric.LimitOf(100))
	if got := tr.Update(1000); got != 1100 {
		t.Errorf("TransformOp update = %d, want 1100", got)
	}
}

func TestProgramValidation(t *testing.T) {
	tests := []struct {
		name    string
		prog    string
		ops     []Op
		wantErr bool
	}{
		{"valid", "t", []Op{ReadOp("x")}, false},
		{"empty name", "", []Op{ReadOp("x")}, true},
		{"no ops", "t", nil, true},
		{"empty key", "t", []Op{ReadOp("")}, true},
		{"write without update", "t", []Op{{Kind: OpWrite, Key: "x"}}, true},
		{"read with update", "t", []Op{{Kind: OpRead, Key: "x", Update: func(v metric.Value) metric.Value { return v }}}, true},
		{"bad kind", "t", []Op{{Kind: 0, Key: "x"}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewProgram(tt.prog, tt.ops...)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewProgram err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram with bad input did not panic")
		}
	}()
	MustProgram("")
}

func TestClassDerivation(t *testing.T) {
	q := MustProgram("audit", ReadOp("x"), ReadOp("y"))
	if q.Class() != Query {
		t.Errorf("read-only program class = %v", q.Class())
	}
	u := MustProgram("xfer", AddOp("x", -10), AddOp("y", 10))
	if u.Class() != Update {
		t.Errorf("writing program class = %v", u.Class())
	}
}

func TestReadWriteSets(t *testing.T) {
	p := MustProgram("t",
		ReadOp("c"), AddOp("a", 1), ReadOp("a"), AddOp("b", 2))
	rs := p.ReadSet()
	if len(rs) != 3 || rs[0] != "a" || rs[1] != "b" || rs[2] != "c" {
		t.Errorf("ReadSet = %v", rs)
	}
	ws := p.WriteSet()
	if len(ws) != 2 || ws[0] != "a" || ws[1] != "b" {
		t.Errorf("WriteSet = %v", ws)
	}
}

func TestWriteBound(t *testing.T) {
	p := MustProgram("t", AddOp("x", -100), AddOp("x", 30), AddOp("y", 5))
	if got := p.WriteBound("x"); got.Cmp(metric.LimitOf(130)) != 0 {
		t.Errorf("WriteBound(x) = %s, want 130", got)
	}
	if got := p.WriteBound("y"); got.Cmp(metric.LimitOf(5)) != 0 {
		t.Errorf("WriteBound(y) = %s, want 5", got)
	}
	if got := p.WriteBound("z"); got.Cmp(metric.Zero) != 0 {
		t.Errorf("WriteBound(z) = %s, want 0", got)
	}
	withSet := MustProgram("t2", SetOp("x", 1))
	if !withSet.WriteBound("x").IsInfinite() {
		t.Error("SetOp write bound should be infinite")
	}
}

func TestRollbackDetection(t *testing.T) {
	noRb := MustProgram("t", ReadOp("x"), AddOp("y", 1))
	if noRb.HasRollback() || noRb.LastRollbackIndex() != -1 {
		t.Error("program without rollbacks misdetected")
	}
	pred := func(v metric.Value) bool { return v < 0 }
	withRb := MustProgram("t",
		ReadOp("x"),
		WithAbortIf(AddOp("y", -5), pred),
		AddOp("z", 5))
	if !withRb.HasRollback() {
		t.Error("rollback not detected")
	}
	if got := withRb.LastRollbackIndex(); got != 1 {
		t.Errorf("LastRollbackIndex = %d, want 1", got)
	}
}

func TestOpsConflict(t *testing.T) {
	tests := []struct {
		name string
		a, b Op
		want bool
	}{
		{"read-read same key", ReadOp("x"), ReadOp("x"), false},
		{"read-write same key", ReadOp("x"), AddOp("x", 1), true},
		{"write-read same key", AddOp("x", 1), ReadOp("x"), true},
		{"commuting adds same key", AddOp("x", 1), AddOp("x", 2), false},
		{"add vs set same key", AddOp("x", 1), SetOp("x", 2), true},
		{"set vs set same key", SetOp("x", 1), SetOp("x", 2), true},
		{"different keys", AddOp("x", 1), AddOp("y", 2), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := OpsConflict(tt.a, tt.b); got != tt.want {
				t.Errorf("OpsConflict = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestProgramConflicts(t *testing.T) {
	xfer := MustProgram("xfer", AddOp("x", -10), AddOp("y", 10))
	audit := MustProgram("audit", ReadOp("x"), ReadOp("y"))
	other := MustProgram("other", ReadOp("z"))
	if !xfer.Conflicts(audit) {
		t.Error("xfer should conflict with audit")
	}
	if xfer.Conflicts(other) || audit.Conflicts(other) {
		t.Error("disjoint programs should not conflict")
	}
	if audit.Conflicts(audit) {
		t.Error("read-only programs never conflict")
	}
}

func TestWithSpecCopies(t *testing.T) {
	p := MustProgram("t", ReadOp("x"))
	q := p.WithSpec(metric.SpecOf(100))
	if p.Spec.Import.Cmp(metric.Zero) != 0 {
		t.Error("WithSpec mutated the original")
	}
	if q.Spec.Import.Cmp(metric.LimitOf(100)) != 0 {
		t.Errorf("copy spec = %s", q.Spec)
	}
	if q.Name != p.Name || len(q.Ops) != len(p.Ops) {
		t.Error("copy lost fields")
	}
}

func TestWriteSetKeyTypes(t *testing.T) {
	// Keys are storage.Key; make sure mixed construction works.
	k := storage.Key("acct:1")
	p := MustProgram("t", AddOp(k, 1))
	if p.WriteSet()[0] != k {
		t.Errorf("WriteSet = %v", p.WriteSet())
	}
}
