package txn

import (
	"fmt"

	"asynctp/internal/lock"
	"asynctp/internal/storage"
)

// StepKind names the execution point a StepHook is consulted at. The
// points bracket exactly the windows a schedule explorer needs to
// control: before a lock/admission request (where blocking or absorption
// decisions happen), before an operation's effect is applied, and before
// the commit/validation critical section.
type StepKind int

// Step kinds.
const (
	// StepAcquire fires before the engine requests admission for an
	// operation (lock acquisition under 2PL, timestamp admission under
	// TO). The op has had no effect yet.
	StepAcquire StepKind = iota + 1
	// StepApply fires after admission, immediately before the operation
	// reads or writes the store.
	StepApply
	// StepCommit fires before the commit point (journal apply under
	// locking, the validate-and-install critical section under OCC, the
	// install section under TO). Key is empty.
	StepCommit
)

// String renders the step kind.
func (k StepKind) String() string {
	switch k {
	case StepAcquire:
		return "acquire"
	case StepApply:
		return "apply"
	case StepCommit:
		return "commit"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step describes one scheduling point of one executing transaction.
type Step struct {
	// Owner is the executing transaction (piece attempt).
	Owner lock.Owner
	// Program is the running program's name.
	Program string
	// Op is the index of the operation within the program (-1 for
	// StepCommit).
	Op int
	// Kind is the execution point.
	Kind StepKind
	// Key is the item the operation touches (empty for StepCommit).
	Key storage.Key
	// Write reports whether the operation writes Key.
	Write bool
}

// String renders the step for schedule logs.
func (s Step) String() string {
	if s.Kind == StepCommit {
		return fmt.Sprintf("t%d %s %s", s.Owner, s.Program, s.Kind)
	}
	rw := "r"
	if s.Write {
		rw = "w"
	}
	return fmt.Sprintf("t%d %s op%d %s %s(%s)", s.Owner, s.Program, s.Op, s.Kind, rw, s.Key)
}

// StepHook gates execution progress, in the style of fault.Hook: the
// engines call OnStep at every scheduling point and only proceed when it
// returns. A deterministic schedule explorer implements OnStep by parking
// the calling goroutine until the seeded scheduler grants its turn; a nil
// hook (the default everywhere) costs one branch per operation.
//
// OnStep may block. It is called without any engine-internal mutex held.
type StepHook interface {
	OnStep(s Step)
}
