package workload

import (
	"context"
	"fmt"
	"testing"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/storage"
)

// TestAirlineUnderEveryMethod oversells a small flight under all six
// methods: exactly Seats reservations commit, the rest roll back, and
// the seats+booked invariant holds at quiescence — including when the
// booking-counter piece commits asynchronously under chopping.
func TestAirlineUnderEveryMethod(t *testing.T) {
	for _, method := range core.Methods() {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			const seats, attempts = 5, 12
			w, err := NewAirline(AirlineConfig{
				Flights: 1, SeatsPerFlight: seats,
				ReserveCount: attempts, QueryCount: 3, Epsilon: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			r, err := RunnerFor(w, method, core.Static, false)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := Run(ctx, r, w, 6, 17)
			if err != nil {
				t.Fatal(err)
			}
			// 3 queries always commit; exactly `seats` reservations do.
			if res.Committed != seats+3 {
				t.Errorf("committed = %d, want %d", res.Committed, seats+3)
			}
			if res.RolledBack != attempts-seats {
				t.Errorf("rolled back = %d, want %d", res.RolledBack, attempts-seats)
			}
			if res.MaxDeviation > 1000 {
				t.Errorf("query deviation %d > ε", res.MaxDeviation)
			}
		})
	}
}

// TestPayrollEndStateUnderMethods posts raises under the serializable
// baseline and Method 1 and checks the exact end state.
func TestPayrollEndStateUnderMethods(t *testing.T) {
	for _, method := range []core.Method{core.BaselineSRCC, core.Method1SRChopDC, core.Method3ESRChopDC} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			w, err := NewPayroll(PayrollConfig{
				Employees: 4, InitialSalary: 100000, Raise: 500,
				RaiseCount: 6, QueryCount: 2, Epsilon: 10000,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := ConfigFor(w, method, core.Static, false)
			r, err := core.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := Run(ctx, r, w, 6, 23)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != w.TotalInstances() {
				t.Errorf("committed = %d, want %d", res.Committed, w.TotalInstances())
			}
			want := int64(4*100000 + 4*6*500)
			var got int64
			for e := 0; e < 4; e++ {
				got += int64(cfg.Store.Get(storage.Key(fmt.Sprintf("emp%d:salary", e))))
			}
			if got != want {
				t.Errorf("final payroll = %d, want %d", got, want)
			}
		})
	}
}
