package workload

import (
	"fmt"
	"math/rand"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ContentionConfig parameterizes the hot-key contention workload used by
// the perfbench contention suite: a Zipfian-skewed transfer stream built
// to separate the abort-retry engines from the repair engine. Each
// transfer does a few ops of private per-type bookkeeping (reads and a
// commutative counter that never conflict across types) and then one
// guarded withdrawal plus one deposit on Zipfian-hot shared accounts.
// The AbortIf guard observes the withdrawal's input, so under optimistic
// DC any committed write to that account between read and validation
// forces a whole-transaction redo — while the repair engine re-executes
// only the one or two stale hot ops and keeps the cold prefix.
type ContentionConfig struct {
	// Keys is the size of the shared hot-account pool.
	Keys int
	// Theta is the Zipfian skew over that pool (0 uniform, 0.99 the
	// classic YCSB hot-spot).
	Theta float64
	// TransferTypes is the number of distinct transfer programs (each
	// with its own private bookkeeping keys and its own Zipfian-drawn
	// source/destination pair); TransferCount is the instance count per
	// program.
	TransferTypes, TransferCount int
	// AuditCount is the instance count of the audit query (0 disables
	// it). AuditSpan is how many hot accounts the audit reads, hottest
	// first; when it covers the whole pool the audit's serializable
	// answer is the conserved total and the driver checks deviation.
	AuditCount, AuditSpan int
	// Amount is the fixed transfer size.
	Amount metric.Value
	// InitialBalance seeds every hot account. Keep it comfortably above
	// Amount × TransferCount × TransferTypes so the withdrawal guard
	// never actually fires: the guard exists to make the read observed,
	// not to roll transfers back.
	InitialBalance metric.Value
	// Epsilon is the ε-spec: transfers export up to it, audits import up
	// to it (this is what the repair-skip engine spends).
	Epsilon metric.Fuzz
	// Seed drives the Zipfian source/destination draws.
	Seed int64
}

// hotKey names hot account k.
func hotKey(k int) storage.Key {
	return storage.Key(fmt.Sprintf("h%d", k))
}

// NewContention builds the contention workload described on
// ContentionConfig.
func NewContention(cfg ContentionConfig) (*Workload, error) {
	if cfg.Keys < 2 {
		return nil, fmt.Errorf("workload: contention needs >=2 hot keys, got %d", cfg.Keys)
	}
	if cfg.TransferTypes < 1 || cfg.TransferCount < 1 {
		return nil, fmt.Errorf("workload: contention needs transfers")
	}
	if cfg.Amount <= 0 {
		return nil, fmt.Errorf("workload: contention needs a positive amount")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipfian(rng, cfg.Keys, cfg.Theta)
	w := &Workload{
		Name:     "contention",
		Initial:  make(map[storage.Key]metric.Value),
		Expected: make(map[int]metric.Value),
	}
	for k := 0; k < cfg.Keys; k++ {
		w.Initial[hotKey(k)] = cfg.InitialBalance
	}
	amt := cfg.Amount
	spec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	for ti := 0; ti < cfg.TransferTypes; ti++ {
		cfgKey := storage.Key(fmt.Sprintf("cfg:t%d", ti))
		rateKey := storage.Key(fmt.Sprintf("rate:t%d", ti))
		feeKey := storage.Key(fmt.Sprintf("fee:t%d", ti))
		limitKey := storage.Key(fmt.Sprintf("limit:t%d", ti))
		logKey := storage.Key(fmt.Sprintf("log:t%d", ti))
		w.Initial[cfgKey] = 1
		w.Initial[rateKey] = 1
		w.Initial[feeKey] = 1
		w.Initial[limitKey] = 1 << 40
		w.Initial[logKey] = 0
		src := zipf.Next()
		dst := zipf.Next()
		for dst == src {
			dst = rng.Intn(cfg.Keys)
		}
		p := txn.MustProgram(fmt.Sprintf("xfer%d", ti),
			// Cold prefix: private per-type keys, never contended. Under
			// abort-retry this work is redone on every validation failure;
			// under repair it stays clean and is kept.
			txn.ReadOp(cfgKey),
			txn.ReadOp(rateKey),
			txn.ReadOp(feeKey),
			txn.ReadOp(limitKey),
			txn.AddOp(logKey, 1),
			// Hot pair: the guard observes the withdrawal input, so the
			// source read is validated (not absorbed) by every engine.
			txn.WithAbortIf(
				txn.AddOp(hotKey(src), -amt),
				func(v metric.Value) bool { return v < amt }, // insufficient funds
			),
			txn.AddOp(hotKey(dst), amt),
		).WithSpec(spec)
		w.Programs = append(w.Programs, p)
		w.Counts = append(w.Counts, cfg.TransferCount)
	}
	if cfg.AuditCount > 0 {
		span := cfg.AuditSpan
		if span <= 0 || span > cfg.Keys {
			span = cfg.Keys
		}
		ops := make([]txn.Op, 0, span)
		for k := 0; k < span; k++ {
			ops = append(ops, txn.ReadOp(hotKey(k)))
		}
		audit := txn.MustProgram("audit", ops...).
			WithSpec(metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero})
		if span == cfg.Keys {
			// Transfers only shuffle value inside the pool, so a full-pool
			// audit has an invariant serializable answer.
			w.Expected[len(w.Programs)] = cfg.InitialBalance * metric.Value(cfg.Keys)
		}
		w.Programs = append(w.Programs, audit)
		w.Counts = append(w.Counts, cfg.AuditCount)
	}
	return w, nil
}
