package workload

import (
	"context"
	"fmt"
	"testing"

	"asynctp/internal/core"
	"asynctp/internal/storage"
)

func TestNewContentionShape(t *testing.T) {
	w, err := NewContention(ContentionConfig{
		Keys: 8, Theta: 0.99,
		TransferTypes: 4, TransferCount: 5,
		AuditCount: 2, AuditSpan: 0,
		Amount: 10, InitialBalance: 10000, Epsilon: 500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 hot keys + 5 private keys per transfer type.
	if len(w.Initial) != 8+5*4 {
		t.Errorf("initial keys = %d, want %d", len(w.Initial), 8+5*4)
	}
	if len(w.Programs) != 5 || len(w.Counts) != 5 {
		t.Fatalf("programs = %d counts = %d", len(w.Programs), len(w.Counts))
	}
	// A zero/oversized span covers the pool, so the audit is checkable.
	qi := len(w.Programs) - 1
	if got := len(w.Programs[qi].ReadSet()); got != 8 {
		t.Errorf("audit reads %d keys, want 8", got)
	}
	if w.Expected[qi] != 8*10000 {
		t.Errorf("expected = %d, want 80000", w.Expected[qi])
	}
	// Each transfer writes its log key plus two distinct hot accounts.
	for ti := 0; ti < 4; ti++ {
		ws := w.Programs[ti].WriteSet()
		if len(ws) != 3 {
			t.Errorf("transfer %d writes %d keys, want 3: %v", ti, len(ws), ws)
		}
	}
}

func TestNewContentionDeterministic(t *testing.T) {
	mk := func() string {
		w, err := NewContention(ContentionConfig{
			Keys: 16, Theta: 0.9,
			TransferTypes: 6, TransferCount: 2,
			Amount: 5, InitialBalance: 1000, Epsilon: 100, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sig string
		for _, p := range w.Programs {
			sig += fmt.Sprint(p.WriteSet(), p.ReadSet(), ";")
		}
		return sig
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seed produced different workloads:\n%s\n%s", a, b)
	}
}

func TestNewContentionValidation(t *testing.T) {
	if _, err := NewContention(ContentionConfig{Keys: 1, TransferTypes: 1, TransferCount: 1, Amount: 1}); err == nil {
		t.Error("single hot key accepted")
	}
	if _, err := NewContention(ContentionConfig{Keys: 4, Amount: 1}); err == nil {
		t.Error("no transfers accepted")
	}
	if _, err := NewContention(ContentionConfig{Keys: 4, TransferTypes: 1, TransferCount: 1}); err == nil {
		t.Error("zero amount accepted")
	}
}

// TestContentionConserves runs the stream under the abort-retry and
// repair engines and checks the invariant the audit is priced against:
// hot-pool value is conserved, nothing rolls back (the guard exists to
// observe the read, not to fire), and the repair engine's self-check
// stays clean.
func TestContentionConserves(t *testing.T) {
	for _, kind := range []core.EngineKind{
		core.EngineOptimistic, core.EngineRepair, core.EngineRepairSkip,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			w, err := NewContention(ContentionConfig{
				Keys: 8, Theta: 0.99,
				TransferTypes: 6, TransferCount: 8,
				AuditCount: 10, AuditSpan: 0,
				Amount: 10, InitialBalance: 1 << 20, Epsilon: 2000, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := ConfigFor(w, core.BaselineESRDC, core.Static, false)
			cfg.Engine = kind
			cfg.VerifyRepairs = true
			store := cfg.Store
			r, err := core.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), r, w, 8, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.RolledBack != 0 {
				t.Errorf("%d transfers rolled back; the guard should never fire", res.RolledBack)
			}
			wantCommits := w.TotalInstances()
			if res.Committed != wantCommits {
				t.Errorf("committed = %d, want %d", res.Committed, wantCommits)
			}
			var total int64
			for k := 0; k < 8; k++ {
				total += int64(store.Get(storage.Key(fmt.Sprintf("h%d", k))))
			}
			if total != 8*(1<<20) {
				t.Errorf("hot pool total = %d, want %d", total, 8*(1<<20))
			}
			if res.MaxDeviation > 2000 {
				t.Errorf("audit deviation %d exceeds ε 2000", res.MaxDeviation)
			}
			if msg := r.RepairVerifyFailure(); msg != "" {
				t.Errorf("repair self-check: %s", msg)
			}
			// Each log key counts its type's committed transfers exactly once,
			// even across repairs and retries.
			for ti := 0; ti < 6; ti++ {
				if got := store.Get(storage.Key(fmt.Sprintf("log:t%d", ti))); got != 8 {
					t.Errorf("log:t%d = %d, want 8", ti, got)
				}
			}
		})
	}
}
