package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/stats"
)

// Result summarizes one driven run.
type Result struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Committed/RolledBack count finished instances; Retries sums piece
	// resubmissions.
	Committed, RolledBack, Retries int
	// ThroughputTPS is committed instances per second.
	ThroughputTPS float64
	// Latency records per-instance completion latency.
	Latency *stats.Recorder
	// QueryLatency records query-instance latency separately (the class
	// ESR is supposed to help most).
	QueryLatency *stats.Recorder
	// Deviations are |observed − serializable| per checkable query.
	Deviations []metric.Fuzz
	// MaxDeviation and MeanDeviation summarize Deviations.
	MaxDeviation  metric.Fuzz
	MeanDeviation float64
	// MaxImported is the largest per-instance imported fuzziness.
	MaxImported metric.Fuzz
}

// Run executes the workload's full declared stream (every instance of
// every program) against r using the given worker concurrency, and
// gathers the measurements. The submission order is a seed-shuffled
// interleaving of the stream.
func Run(ctx context.Context, r *core.Runner, w *Workload, concurrency int, seed int64) (*Result, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	schedule := make([]int, 0, w.TotalInstances())
	for ti, count := range w.Counts {
		for k := 0; k < count; k++ {
			schedule = append(schedule, ti)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(schedule), func(i, j int) {
		schedule[i], schedule[j] = schedule[j], schedule[i]
	})

	res := &Result{Latency: stats.NewRecorder(), QueryLatency: stats.NewRecorder()}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		first error
	)
	work := make(chan int)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range work {
				start := time.Now()
				out, err := r.Submit(ctx, ti)
				elapsed := time.Since(start)
				mu.Lock()
				if err != nil {
					if first == nil {
						first = fmt.Errorf("submit %d: %w", ti, err)
					}
					mu.Unlock()
					continue
				}
				res.Retries += out.Retries
				switch {
				case out.RolledBack:
					res.RolledBack++
				case out.Committed:
					res.Committed++
					res.Latency.Add(elapsed)
					if expected, ok := w.Expected[ti]; ok {
						res.QueryLatency.Add(elapsed)
						dev := metric.Distance(out.SumReads(), expected)
						res.Deviations = append(res.Deviations, dev)
						if dev > res.MaxDeviation {
							res.MaxDeviation = dev
						}
					}
					if out.Imported > res.MaxImported {
						res.MaxImported = out.Imported
					}
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for _, ti := range schedule {
		work <- ti
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	if first != nil {
		return res, first
	}
	if res.Elapsed > 0 {
		res.ThroughputTPS = float64(res.Committed) / res.Elapsed.Seconds()
	}
	if len(res.Deviations) > 0 {
		var total float64
		for _, d := range res.Deviations {
			total += float64(d)
		}
		res.MeanDeviation = total / float64(len(res.Deviations))
	}
	return res, nil
}

// ConfigFor builds the core.Config for workload w under the given method
// and distribution, with a fresh store. Callers may tweak fields (e.g.
// OpDelay) before handing it to core.NewRunner.
func ConfigFor(w *Workload, method core.Method, dist core.Distribution, record bool) core.Config {
	return core.Config{
		Method:       method,
		Distribution: dist,
		Store:        w.Store(),
		Programs:     w.Programs,
		Counts:       w.Counts,
		Record:       record,
	}
}

// RunnerFor builds a core.Runner for workload w under the given method
// and distribution, with a fresh store.
func RunnerFor(w *Workload, method core.Method, dist core.Distribution, record bool) (*core.Runner, error) {
	return core.NewRunner(ConfigFor(w, method, dist, record))
}
