package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/site"
	"asynctp/internal/stats"
)

// Submitter is the slice of site.Cluster the arrival runner needs; any
// settlement-reporting submit endpoint (in-process cluster, one process
// of a multi-process run) satisfies it.
type Submitter interface {
	Submit(ctx context.Context, ti int) (*site.Result, error)
}

// ArrivalMode selects the arrival process.
type ArrivalMode int

const (
	// ClosedLoop keeps Workers instances permanently in flight — the
	// classic benchmark loop, which self-throttles under overload and
	// so understates latency collapse.
	ClosedLoop ArrivalMode = iota
	// OpenLoop draws Poisson interarrivals at Rate regardless of
	// completions — the honest model of independent clients, where an
	// overloaded system grows a queue instead of slowing the offered
	// load. Beyond MaxInFlight, arrivals are shed (counted, not
	// submitted), bounding memory while keeping the overload visible.
	OpenLoop
)

// ArrivalConfig drives one load-generation run.
type ArrivalConfig struct {
	Mode ArrivalMode
	// Rate is the open-loop offered load in arrivals/sec.
	Rate float64
	// Total is the number of arrivals to offer.
	Total int
	// Workers is the closed-loop concurrency (ignored by OpenLoop).
	Workers int
	// MaxInFlight bounds open-loop concurrency; arrivals beyond it are
	// shed. 0 means 4096.
	MaxInFlight int
	// Programs are the table indices to draw from, uniformly (key skew
	// is baked into the table itself). Empty is an error — a
	// multi-process run must pass its local-origin subset explicitly.
	Programs []int
	// Seed drives interarrival and type draws.
	Seed int64
}

// ArrivalResult summarizes one run.
type ArrivalResult struct {
	// Offered counts arrivals; Started counts submitted instances;
	// Shed = Offered − Started (open loop only).
	Offered, Started, Shed int
	// Committed/RolledBack/Compensated count settlement outcomes;
	// Errors counts submissions that failed outright.
	Committed, RolledBack, Compensated, Errors int
	// Elapsed spans first arrival to last settlement.
	Elapsed time.Duration
	// ThroughputTPS is committed instances per second.
	ThroughputTPS float64
	// Initiation and Settlement record the two latencies the paper
	// separates: when the caller may proceed vs when every piece has
	// committed.
	Initiation, Settlement *stats.Recorder
	// MaxImported is the largest per-instance imported fuzziness.
	MaxImported metric.Fuzz
}

// RunArrivals offers cfg.Total arrivals to sub under the configured
// arrival process and gathers settlement measurements. It returns when
// every started instance has settled (or ctx ends).
func RunArrivals(ctx context.Context, sub Submitter, cfg ArrivalConfig) (*ArrivalResult, error) {
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("workload: arrivals need a non-empty program set")
	}
	if cfg.Total < 1 {
		return nil, fmt.Errorf("workload: arrivals need Total >= 1")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight < 1 {
		maxInFlight = 4096
	}
	res := &ArrivalResult{Initiation: stats.NewRecorder(), Settlement: stats.NewRecorder()}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	submit := func(ti int) {
		defer wg.Done()
		out, err := sub.Submit(ctx, ti)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Errors++
			return
		}
		res.Initiation.Add(out.Initiation)
		res.Settlement.Add(out.Settlement)
		switch {
		case out.Committed:
			res.Committed++
		case out.RolledBack:
			res.RolledBack++
		}
		if out.Compensated {
			res.Compensated++
		}
		if out.Imported > res.MaxImported {
			res.MaxImported = out.Imported
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	switch cfg.Mode {
	case OpenLoop:
		if cfg.Rate <= 0 {
			return nil, fmt.Errorf("workload: open loop needs Rate > 0")
		}
		// inFlight is guarded by mu (shared with the result fields);
		// the arrival loop never blocks on service completion — that
		// is the whole point of an open loop.
		inFlight := 0
		done := func() {
			mu.Lock()
			inFlight--
			mu.Unlock()
		}
		next := start
	arrivals:
		for i := 0; i < cfg.Total; i++ {
			next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break arrivals
				}
			}
			ti := cfg.Programs[rng.Intn(len(cfg.Programs))]
			res.Offered++
			mu.Lock()
			if inFlight >= maxInFlight {
				res.Shed++
				mu.Unlock()
				continue
			}
			inFlight++
			res.Started++
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer done()
				submit(ti)
			}()
		}
	default: // ClosedLoop
		workers := cfg.Workers
		if workers < 1 {
			workers = 1
		}
		jobs := make(chan int)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range jobs {
					wg.Add(1)
					submit(ti)
				}
			}()
		}
	closed:
		for i := 0; i < cfg.Total; i++ {
			ti := cfg.Programs[rng.Intn(len(cfg.Programs))]
			select {
			case jobs <- ti:
				res.Offered++
				res.Started++
			case <-ctx.Done():
				break closed
			}
		}
		close(jobs)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.ThroughputTPS = float64(res.Committed) / res.Elapsed.Seconds()
	}
	return res, nil
}
