package workload

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
)

// ycsbCluster builds a chopped-queue cluster seeded with the workload,
// registered and ready to submit.
func ycsbCluster(t *testing.T, w *Workload) *site.Cluster {
	t.Helper()
	c, err := site.NewCluster(site.Config{
		Strategy:          site.ChoppedQueues,
		Placement:         YCSBPlacement,
		Initial:           SplitInitial(w.Initial, YCSBPlacement),
		RetransmitEvery:   5 * time.Millisecond,
		AllowCompensation: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterPrograms(w.Programs); err != nil {
		t.Fatal(err)
	}
	return c
}

// auditConservation waits for the queues to drain and asserts the
// cluster-wide record total equals the workload's initial total.
func auditConservation(t *testing.T, c *site.Cluster, w *Workload, sites []simnet.SiteID) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		idle := true
		for _, id := range sites {
			if !c.Site(id).QueuesIdle() {
				idle = false
			}
		}
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queues did not quiesce")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var total metric.Value
	for _, id := range sites {
		st := c.Site(id).Store
		for _, k := range st.Keys() {
			if strings.HasPrefix(string(k), "__") {
				continue // piece markers
			}
			total += st.Get(k)
		}
	}
	if want := w.Total(); total != want {
		t.Fatalf("value not conserved: total %d, want %d", total, want)
	}
}

func allPrograms(w *Workload) []int {
	out := make([]int, len(w.Programs))
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRunArrivalsClosedLoop(t *testing.T) {
	cfg := ycsbTestConfig()
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := ycsbCluster(t, w)
	res, err := RunArrivals(context.Background(), c, ArrivalConfig{
		Mode:     ClosedLoop,
		Total:    120,
		Workers:  8,
		Programs: allPrograms(w),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 120 || res.Started != 120 || res.Shed != 0 {
		t.Fatalf("closed loop accounting: offered %d started %d shed %d", res.Offered, res.Started, res.Shed)
	}
	if res.Errors != 0 {
		t.Fatalf("%d submissions errored", res.Errors)
	}
	if res.Committed != 120 {
		t.Fatalf("committed %d of 120 (rolledback %d)", res.Committed, res.RolledBack)
	}
	if res.Settlement.N() != 120 || res.Initiation.N() != 120 {
		t.Fatalf("latency samples: initiation %d settlement %d", res.Initiation.N(), res.Settlement.N())
	}
	if res.ThroughputTPS <= 0 {
		t.Fatal("no throughput recorded")
	}
	auditConservation(t, c, w, cfg.Sites)
}

func TestRunArrivalsOpenLoop(t *testing.T) {
	cfg := ycsbTestConfig()
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := ycsbCluster(t, w)
	res, err := RunArrivals(context.Background(), c, ArrivalConfig{
		Mode:        OpenLoop,
		Rate:        5000, // arrivals/sec, deliberately over capacity with MaxInFlight 64
		Total:       300,
		MaxInFlight: 64,
		Programs:    allPrograms(w),
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 300 {
		t.Fatalf("offered %d, want 300", res.Offered)
	}
	if res.Started+res.Shed != res.Offered {
		t.Fatalf("accounting leak: started %d + shed %d != offered %d", res.Started, res.Shed, res.Offered)
	}
	if res.Committed+res.RolledBack+res.Errors != res.Started {
		t.Fatalf("outcomes %d+%d+%d != started %d", res.Committed, res.RolledBack, res.Errors, res.Started)
	}
	if res.Errors != 0 {
		t.Fatalf("%d submissions errored", res.Errors)
	}
	// Shedding is load-dependent; what must hold is that shed arrivals
	// were never submitted (accounting above) and every started one
	// settled and conserved value.
	auditConservation(t, c, w, cfg.Sites)
}

func TestRunArrivalsOpenLoopSheds(t *testing.T) {
	// A submitter that parks until released: with MaxInFlight 1 and an
	// arrival rate far above 1/service-time, nearly every arrival after
	// the first must shed — deterministic, cluster-free shed test.
	block := make(chan struct{})
	var once sync.Once
	sub := submitFunc(func(ctx context.Context, ti int) (*site.Result, error) {
		<-block
		return &site.Result{Committed: true}, nil
	})
	done := make(chan *ArrivalResult, 1)
	go func() {
		res, err := RunArrivals(context.Background(), sub, ArrivalConfig{
			Mode:        OpenLoop,
			Rate:        20000,
			Total:       100,
			MaxInFlight: 1,
			Programs:    []int{0},
			Seed:        3,
		})
		if err != nil {
			panic(err)
		}
		once.Do(func() { close(block) })
		done <- res
	}()
	// Release the parked submits once arrivals are done; the goroutine
	// closes block right after RunArrivals... which itself waits. So
	// release from here after a beat instead.
	time.Sleep(200 * time.Millisecond)
	once.Do(func() { close(block) })
	res := <-done
	if res.Shed == 0 {
		t.Fatal("open loop at 20000/s over a blocked submitter shed nothing")
	}
	if res.Started+res.Shed != 100 {
		t.Fatalf("started %d + shed %d != 100", res.Started, res.Shed)
	}
	if res.Committed != res.Started {
		t.Fatalf("committed %d, want %d", res.Committed, res.Started)
	}
}

func TestRunArrivalsValidation(t *testing.T) {
	if _, err := RunArrivals(context.Background(), nil, ArrivalConfig{Total: 1}); err == nil {
		t.Fatal("empty program set did not error")
	}
	if _, err := RunArrivals(context.Background(), nil, ArrivalConfig{Programs: []int{0}}); err == nil {
		t.Fatal("zero total did not error")
	}
	if _, err := RunArrivals(context.Background(), nil, ArrivalConfig{Mode: OpenLoop, Programs: []int{0}, Total: 1}); err == nil {
		t.Fatal("open loop without rate did not error")
	}
}

// submitFunc adapts a function to the Submitter interface.
type submitFunc func(ctx context.Context, ti int) (*site.Result, error)

func (f submitFunc) Submit(ctx context.Context, ti int) (*site.Result, error) { return f(ctx, ti) }
