package workload

import (
	"fmt"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/simnet"
)

// Scenario is a named network-and-load condition for the load rig: the
// static wire knobs (loss, latency, jitter — applied to either the
// simnet or the TCP transport's WAN emulation), a rate factor scaling
// the offered load, and an optional timed fault script.
type Scenario struct {
	Name string
	// LossRate/Latency/Jitter are the static wire conditions.
	LossRate float64
	Latency  time.Duration
	Jitter   float64
	// RateFactor multiplies the base offered rate (1 = baseline).
	RateFactor float64
	// Script builds the timed fault schedule, or nil for none. Sites
	// is the cluster's site list in declaration order.
	Script func(seed int64, sites []simnet.SiteID) *fault.Schedule
}

// Scenarios returns the standard table: baseline (clean wire),
// degraded (loss + latency, plus a mid-run drop-rate spike), partition
// (a timed cut between the first two sites, healed before the end),
// and high-load (clean wire at 4x the base rate — the open-loop
// overload probe).
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:       "baseline",
			RateFactor: 1,
		},
		{
			Name:       "degraded",
			LossRate:   0.02,
			Latency:    2 * time.Millisecond,
			Jitter:     0.5,
			RateFactor: 1,
			Script: func(seed int64, sites []simnet.SiteID) *fault.Schedule {
				return fault.NewSchedule(seed).
					DropRateAt(100*time.Millisecond, 0.10).
					DropRateAt(300*time.Millisecond, 0.02)
			},
		},
		{
			Name:       "partition",
			RateFactor: 1,
			Script: func(seed int64, sites []simnet.SiteID) *fault.Schedule {
				if len(sites) < 2 {
					return fault.NewSchedule(seed)
				}
				return fault.NewSchedule(seed).
					PartitionAt(50*time.Millisecond, sites[0], sites[1]).
					HealAt(250*time.Millisecond, sites[0], sites[1])
			},
		},
		{
			Name:       "high-load",
			RateFactor: 4,
		},
	}
}

// ScenarioByName looks a scenario up in the standard table.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}
