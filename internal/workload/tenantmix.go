package workload

import (
	"fmt"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// TenantMixConfig parameterizes the multi-tenant serving workload: N
// structurally identical tenants, each a self-contained mini-bank with
// its own key prefix, hot account pool, transfer programs, and an
// ε-tolerant audit. The tenants are key-disjoint by construction, so a
// partitioned serving layer runs them conflict-free — while a merged
// single runner interleaves their instances and pays intra-tenant
// conflict costs whenever two instances of the same tenant overlap.
type TenantMixConfig struct {
	// Tenants is the number of tenants to generate.
	Tenants int
	// HotKeys is each tenant's hot account pool size (default 2). Every
	// transfer type of a tenant works the same pool, so a tenant's own
	// concurrent instances always conflict — the contention a partition
	// serializes away.
	HotKeys int
	// TransferTypes is the number of distinct transfer programs per
	// tenant (default 2); TransferCount the instance count per program.
	TransferTypes, TransferCount int
	// AuditCount is the instance count of each tenant's audit query.
	AuditCount int
	// Amount is the fixed transfer size; InitialBalance seeds each hot
	// account (keep it >> Amount × instances so the withdrawal guard
	// never fires).
	Amount         metric.Value
	InitialBalance metric.Value
	// Epsilon is the ε-spec: transfers export up to it, audits import
	// up to it. A positive Epsilon is what makes the audits eligible
	// for the serving layer's degraded stale-read path.
	Epsilon metric.Fuzz
}

// tkey names tenant t's key k.
func tkey(t int, k string) storage.Key {
	return storage.Key(fmt.Sprintf("t%d:%s", t, k))
}

// NewTenantMix builds one Workload per tenant, named "t0" … "tN-1".
// Each is complete on its own (initial image, programs, invariant
// audit answer), so callers can hand them to the serving layer as
// tenants or merge them into a single runner as the pre-partitioning
// baseline.
func NewTenantMix(cfg TenantMixConfig) ([]*Workload, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("workload: tenant mix needs >=1 tenant")
	}
	if cfg.HotKeys == 0 {
		cfg.HotKeys = 2
	}
	if cfg.HotKeys < 2 {
		return nil, fmt.Errorf("workload: tenant mix needs >=2 hot keys per tenant")
	}
	if cfg.TransferTypes == 0 {
		cfg.TransferTypes = 2
	}
	if cfg.TransferTypes < 1 || cfg.TransferCount < 1 {
		return nil, fmt.Errorf("workload: tenant mix needs transfers")
	}
	if cfg.Amount <= 0 {
		return nil, fmt.Errorf("workload: tenant mix needs a positive amount")
	}
	spec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	auditSpec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero}
	out := make([]*Workload, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		w := &Workload{
			Name:     fmt.Sprintf("t%d", t),
			Initial:  make(map[storage.Key]metric.Value),
			Expected: make(map[int]metric.Value),
		}
		for k := 0; k < cfg.HotKeys; k++ {
			w.Initial[tkey(t, fmt.Sprintf("h%d", k))] = cfg.InitialBalance
		}
		for ti := 0; ti < cfg.TransferTypes; ti++ {
			cfgKey := tkey(t, fmt.Sprintf("cfg%d", ti))
			rateKey := tkey(t, fmt.Sprintf("rate%d", ti))
			logKey := tkey(t, fmt.Sprintf("log%d", ti))
			w.Initial[cfgKey] = 1
			w.Initial[rateKey] = 1
			w.Initial[logKey] = 0
			src := ti % cfg.HotKeys
			dst := (ti + 1) % cfg.HotKeys
			amt := cfg.Amount
			p := txn.MustProgram(fmt.Sprintf("t%d/xfer%d", t, ti),
				// Cold per-type prefix: private reads plus a commutative
				// log append — work an abort-retry engine redoes in full
				// on every same-tenant conflict.
				txn.ReadOp(cfgKey),
				txn.ReadOp(rateKey),
				txn.AddOp(logKey, 1),
				// Hot pair inside the tenant's own pool; the guard makes
				// the withdrawal read validated, not absorbed.
				txn.WithAbortIf(
					txn.AddOp(tkey(t, fmt.Sprintf("h%d", src)), -amt),
					func(v metric.Value) bool { return v < amt },
				),
				txn.AddOp(tkey(t, fmt.Sprintf("h%d", dst)), amt),
			).WithSpec(spec)
			w.Programs = append(w.Programs, p)
			w.Counts = append(w.Counts, cfg.TransferCount)
		}
		if cfg.AuditCount > 0 {
			ops := make([]txn.Op, 0, cfg.HotKeys)
			for k := 0; k < cfg.HotKeys; k++ {
				ops = append(ops, txn.ReadOp(tkey(t, fmt.Sprintf("h%d", k))))
			}
			audit := txn.MustProgram(fmt.Sprintf("t%d/audit", t), ops...).WithSpec(auditSpec)
			// Transfers shuffle value inside the tenant's hot pool, so
			// the audit's serializable answer is invariant.
			w.Expected[len(w.Programs)] = cfg.InitialBalance * metric.Value(cfg.HotKeys)
			w.Programs = append(w.Programs, audit)
			w.Counts = append(w.Counts, cfg.AuditCount)
		}
		out[t] = w
	}
	return out, nil
}

// MergeWorkloads flattens several key-disjoint workloads into one — the
// pre-partitioning baseline: a single runner serving every tenant's
// stream through one engine. Program indices are concatenated in input
// order; Expected entries are re-based accordingly.
func MergeWorkloads(name string, ws []*Workload) (*Workload, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("workload: nothing to merge")
	}
	m := &Workload{
		Name:     name,
		Initial:  make(map[storage.Key]metric.Value),
		Expected: make(map[int]metric.Value),
	}
	for _, w := range ws {
		base := len(m.Programs)
		for key, v := range w.Initial {
			if _, dup := m.Initial[key]; dup {
				return nil, fmt.Errorf("workload: merge key collision on %q", key)
			}
			m.Initial[key] = v
		}
		m.Programs = append(m.Programs, w.Programs...)
		counts := w.Counts
		if len(counts) == 0 {
			counts = make([]int, len(w.Programs))
			for i := range counts {
				counts[i] = 1
			}
		}
		m.Counts = append(m.Counts, counts...)
		for ti, exp := range w.Expected {
			m.Expected[base+ti] = exp
		}
	}
	return m, nil
}
