package workload

import (
	"strings"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

func mixCfg() TenantMixConfig {
	return TenantMixConfig{
		Tenants:        4,
		HotKeys:        2,
		TransferTypes:  2,
		TransferCount:  3,
		AuditCount:     1,
		Amount:         5,
		InitialBalance: 1000,
		Epsilon:        50,
	}
}

func TestTenantMixShape(t *testing.T) {
	ws, err := NewTenantMix(mixCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d workloads, want 4", len(ws))
	}
	for i, w := range ws {
		if w.Name != "t"+string(rune('0'+i)) {
			t.Errorf("workload %d named %q", i, w.Name)
		}
		if len(w.Programs) != 3 { // 2 transfers + 1 audit
			t.Fatalf("%s: %d programs, want 3", w.Name, len(w.Programs))
		}
		for _, p := range w.Programs {
			if !strings.HasPrefix(p.Name, w.Name+"/") {
				t.Errorf("%s program named %q, want tenant prefix", w.Name, p.Name)
			}
			for _, op := range p.Ops {
				if !strings.HasPrefix(string(op.Key), w.Name+":") {
					t.Errorf("%s program %s touches foreign key %q", w.Name, p.Name, op.Key)
				}
			}
		}
		audit := w.Programs[2]
		if audit.Class() != txn.Query {
			t.Errorf("%s audit class = %v, want query", w.Name, audit.Class())
		}
		if audit.Spec.Import.Bound() != 50 {
			t.Errorf("%s audit import bound = %v, want 50", w.Name, audit.Spec.Import)
		}
		if exp := w.Expected[2]; exp != 2000 {
			t.Errorf("%s audit expected = %d, want 2000", w.Name, exp)
		}
	}
}

func TestTenantMixKeyDisjointAndMerge(t *testing.T) {
	ws, err := NewTenantMix(mixCfg())
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeWorkloads("merged", ws)
	if err != nil {
		t.Fatal(err)
	}
	var perTenantKeys int
	for _, w := range ws {
		perTenantKeys += len(w.Initial)
	}
	if len(m.Initial) != perTenantKeys {
		t.Errorf("merged initial has %d keys, want %d (disjoint union)", len(m.Initial), perTenantKeys)
	}
	if len(m.Programs) != 12 || len(m.Counts) != 12 {
		t.Errorf("merged has %d programs / %d counts, want 12 / 12", len(m.Programs), len(m.Counts))
	}
	// Expected entries re-based: audits sit at indices 2, 5, 8, 11.
	for _, ti := range []int{2, 5, 8, 11} {
		if m.Expected[ti] != 2000 {
			t.Errorf("merged Expected[%d] = %d, want 2000", ti, m.Expected[ti])
		}
	}
	var total metric.Value
	for _, v := range m.Initial {
		total += v
	}
	var perTotal metric.Value
	for _, w := range ws {
		for _, v := range w.Initial {
			perTotal += v
		}
	}
	if total != perTotal {
		t.Errorf("merge changed the initial sum: %d vs %d", total, perTotal)
	}

	// Colliding key spaces must be rejected.
	if _, err := MergeWorkloads("bad", []*Workload{ws[0], ws[0]}); err == nil {
		t.Error("merging self-overlapping workloads must error")
	}
	if _, err := MergeWorkloads("empty", nil); err == nil {
		t.Error("merging nothing must error")
	}
}

func TestTenantMixValidation(t *testing.T) {
	bad := []TenantMixConfig{
		{},
		{Tenants: 1, HotKeys: 1, TransferTypes: 1, TransferCount: 1, Amount: 1},
		{Tenants: 1, TransferCount: 0},
		{Tenants: 1, TransferCount: 1, Amount: 0},
	}
	for i, cfg := range bad {
		if _, err := NewTenantMix(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}
