// Package workload declares benchmark job streams — banking, airline
// reservation, and payroll, the application domains the paper's examples
// draw on — and a driver that executes a declared stream against a
// core.Runner while measuring throughput, latency, retries, and query
// deviation from the serializable answer.
//
// Every workload is a fully declared stream (program types plus instance
// counts), matching the chopping assumption that the job stream is known
// in advance. Query programs whose serializable answer is an invariant
// (conserved totals) carry that expected value so the driver can measure
// actual inconsistency, not just bound it.
package workload

import (
	"fmt"
	"math/rand"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Workload is a declared job stream plus its invariants.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Initial seeds the store.
	Initial map[storage.Key]metric.Value
	// Programs and Counts declare the stream.
	Programs []*txn.Program
	Counts   []int
	// Expected maps a query program index to its serializable answer
	// (sum of reads), when that answer is invariant across the run.
	Expected map[int]metric.Value
}

// BankConfig parameterizes the banking workload.
type BankConfig struct {
	// Branches and AccountsPerBranch shape the database.
	Branches          int
	AccountsPerBranch int
	// InitialBalance seeds every account.
	InitialBalance metric.Value
	// TransferAmount is the fixed transfer size (its write bound).
	TransferAmount metric.Value
	// TransferTypes is the number of distinct transfer programs;
	// TransferCount is the instance count per program.
	TransferTypes, TransferCount int
	// AuditCount is the instance count per audit program (one audit
	// program per branch when IntraBranch, else one global audit).
	AuditCount int
	// Epsilon is the ε-spec: transfers export up to it, audits import up
	// to it.
	Epsilon metric.Fuzz
	// IntraBranch keeps each transfer inside one branch, making branch
	// audits invariant-checkable and transfers choppable against them.
	IntraBranch bool
	// HotBias skews transfer sources toward each branch's account 0
	// with the given probability (0 disables skew) — a cheap stand-in
	// for Zipf-style hot keys when sweeping contention.
	HotBias float64
	// Seed drives account-pair selection.
	Seed int64
}

// account names branch b's account i.
func account(b, i int) storage.Key {
	return storage.Key(fmt.Sprintf("b%d:a%d", b, i))
}

// NewBank builds the banking workload: transfers move money between
// accounts, audits sum accounts. The serializable audit answer is the
// conserved total of its read set.
func NewBank(cfg BankConfig) (*Workload, error) {
	if cfg.Branches < 1 || cfg.AccountsPerBranch < 2 {
		return nil, fmt.Errorf("workload: bank needs >=1 branch with >=2 accounts, got %d/%d",
			cfg.Branches, cfg.AccountsPerBranch)
	}
	if cfg.TransferTypes < 1 || cfg.TransferCount < 1 {
		return nil, fmt.Errorf("workload: bank needs transfers")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{
		Name:     "bank",
		Initial:  make(map[storage.Key]metric.Value),
		Expected: make(map[int]metric.Value),
	}
	for b := 0; b < cfg.Branches; b++ {
		for i := 0; i < cfg.AccountsPerBranch; i++ {
			w.Initial[account(b, i)] = cfg.InitialBalance
		}
	}
	spec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	for ti := 0; ti < cfg.TransferTypes; ti++ {
		var fromB, toB int
		if cfg.IntraBranch {
			fromB = ti % cfg.Branches
			toB = fromB
		} else {
			fromB = rng.Intn(cfg.Branches)
			toB = rng.Intn(cfg.Branches)
		}
		fromA := rng.Intn(cfg.AccountsPerBranch)
		if cfg.HotBias > 0 && rng.Float64() < cfg.HotBias {
			fromA = 0 // the hot account
		}
		toA := rng.Intn(cfg.AccountsPerBranch)
		for fromB == toB && fromA == toA {
			toA = rng.Intn(cfg.AccountsPerBranch)
		}
		p := txn.MustProgram(fmt.Sprintf("xfer%d", ti),
			txn.AddOp(account(fromB, fromA), -cfg.TransferAmount),
			txn.AddOp(account(toB, toA), cfg.TransferAmount),
		).WithSpec(spec)
		w.Programs = append(w.Programs, p)
		w.Counts = append(w.Counts, cfg.TransferCount)
	}
	if cfg.AuditCount > 0 {
		auditSpec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero}
		if cfg.IntraBranch {
			for b := 0; b < cfg.Branches; b++ {
				ops := make([]txn.Op, 0, cfg.AccountsPerBranch)
				for i := 0; i < cfg.AccountsPerBranch; i++ {
					ops = append(ops, txn.ReadOp(account(b, i)))
				}
				p := txn.MustProgram(fmt.Sprintf("audit%d", b), ops...).WithSpec(auditSpec)
				w.Expected[len(w.Programs)] = cfg.InitialBalance * metric.Value(cfg.AccountsPerBranch)
				w.Programs = append(w.Programs, p)
				w.Counts = append(w.Counts, cfg.AuditCount)
			}
		} else {
			ops := make([]txn.Op, 0, cfg.Branches*cfg.AccountsPerBranch)
			for b := 0; b < cfg.Branches; b++ {
				for i := 0; i < cfg.AccountsPerBranch; i++ {
					ops = append(ops, txn.ReadOp(account(b, i)))
				}
			}
			p := txn.MustProgram("audit", ops...).WithSpec(auditSpec)
			w.Expected[len(w.Programs)] = cfg.InitialBalance * metric.Value(cfg.Branches*cfg.AccountsPerBranch)
			w.Programs = append(w.Programs, p)
			w.Counts = append(w.Counts, cfg.AuditCount)
		}
	}
	return w, nil
}

// AirlineConfig parameterizes the reservation workload. Reservations
// carry a rollback statement ("sold out"), exercising rollback-safety:
// the seat check must stay in the first piece of any chopping.
type AirlineConfig struct {
	Flights        int
	SeatsPerFlight metric.Value
	// ReserveCount is the instance count per flight's reserve program.
	ReserveCount int
	// QueryCount is the instance count of the load-factor query.
	QueryCount int
	// Epsilon is the ε-spec (the paper: "airline reservation systems
	// often require a limit for each reservation").
	Epsilon metric.Fuzz
}

// flightKeys returns the seat and booking keys of flight f.
func flightKeys(f int) (seats, booked storage.Key) {
	return storage.Key(fmt.Sprintf("f%d:seats", f)), storage.Key(fmt.Sprintf("f%d:booked", f))
}

// NewAirline builds the reservation workload. The invariant is
// seats + booked == SeatsPerFlight per flight, so the query's
// serializable answer is Flights × SeatsPerFlight.
func NewAirline(cfg AirlineConfig) (*Workload, error) {
	if cfg.Flights < 1 || cfg.SeatsPerFlight < 1 {
		return nil, fmt.Errorf("workload: airline needs flights with seats")
	}
	w := &Workload{
		Name:     "airline",
		Initial:  make(map[storage.Key]metric.Value),
		Expected: make(map[int]metric.Value),
	}
	spec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	for f := 0; f < cfg.Flights; f++ {
		seats, booked := flightKeys(f)
		w.Initial[seats] = cfg.SeatsPerFlight
		w.Initial[booked] = 0
		reserve := txn.MustProgram(fmt.Sprintf("reserve%d", f),
			txn.WithAbortIf(
				txn.AddOp(seats, -1),
				func(v metric.Value) bool { return v <= 0 }, // sold out
			),
			txn.AddOp(booked, 1),
		).WithSpec(spec)
		w.Programs = append(w.Programs, reserve)
		w.Counts = append(w.Counts, cfg.ReserveCount)
	}
	if cfg.QueryCount > 0 {
		ops := make([]txn.Op, 0, 2*cfg.Flights)
		for f := 0; f < cfg.Flights; f++ {
			seats, booked := flightKeys(f)
			ops = append(ops, txn.ReadOp(seats), txn.ReadOp(booked))
		}
		query := txn.MustProgram("loadfactor", ops...).
			WithSpec(metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero})
		w.Expected[len(w.Programs)] = cfg.SeatsPerFlight * metric.Value(cfg.Flights)
		w.Programs = append(w.Programs, query)
		w.Counts = append(w.Counts, cfg.QueryCount)
	}
	return w, nil
}

// PayrollConfig parameterizes the payroll workload ("a payroll system
// may limit the salary raise for each employee per year").
type PayrollConfig struct {
	Employees     int
	InitialSalary metric.Value
	// Raise is the per-update raise; its bound is the declared C-edge
	// weight.
	Raise metric.Value
	// RaiseCount is the instance count per raise program; one raise
	// program per employee.
	RaiseCount int
	// QueryCount is the instance count of the total-payroll query.
	QueryCount int
	Epsilon    metric.Fuzz
}

// NewPayroll builds the payroll workload. The payroll total grows as
// raises commit, so mid-run queries have no invariant answer; the
// workload is used for throughput comparison and end-state checking
// (final total = initial + committed raises × Raise).
func NewPayroll(cfg PayrollConfig) (*Workload, error) {
	if cfg.Employees < 1 {
		return nil, fmt.Errorf("workload: payroll needs employees")
	}
	w := &Workload{Name: "payroll", Initial: make(map[storage.Key]metric.Value)}
	spec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	for e := 0; e < cfg.Employees; e++ {
		key := storage.Key(fmt.Sprintf("emp%d:salary", e))
		w.Initial[key] = cfg.InitialSalary
		raise := txn.MustProgram(fmt.Sprintf("raise%d", e),
			txn.AddOp(key, cfg.Raise),
		).WithSpec(spec)
		w.Programs = append(w.Programs, raise)
		w.Counts = append(w.Counts, cfg.RaiseCount)
	}
	if cfg.QueryCount > 0 {
		ops := make([]txn.Op, 0, cfg.Employees)
		for e := 0; e < cfg.Employees; e++ {
			ops = append(ops, txn.ReadOp(storage.Key(fmt.Sprintf("emp%d:salary", e))))
		}
		query := txn.MustProgram("totalpayroll", ops...).
			WithSpec(metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero})
		w.Programs = append(w.Programs, query)
		w.Counts = append(w.Counts, cfg.QueryCount)
	}
	return w, nil
}

// Store builds a fresh store seeded with the workload's initial state.
func (w *Workload) Store() *storage.Store {
	return storage.NewFrom(w.Initial)
}

// TotalInstances returns the number of instances in the stream.
func (w *Workload) TotalInstances() int {
	total := 0
	for _, c := range w.Counts {
		total += c
	}
	return total
}
