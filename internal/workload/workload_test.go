package workload

import (
	"context"
	"testing"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/storage"
)

func TestNewBankShape(t *testing.T) {
	w, err := NewBank(BankConfig{
		Branches: 2, AccountsPerBranch: 4,
		InitialBalance: 1000, TransferAmount: 50,
		TransferTypes: 3, TransferCount: 5, AuditCount: 2,
		Epsilon: 500, IntraBranch: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Initial) != 8 {
		t.Errorf("accounts = %d, want 8", len(w.Initial))
	}
	// 3 transfers + 2 branch audits.
	if len(w.Programs) != 5 || len(w.Counts) != 5 {
		t.Fatalf("programs = %d counts = %d", len(w.Programs), len(w.Counts))
	}
	if w.TotalInstances() != 3*5+2*2 {
		t.Errorf("TotalInstances = %d", w.TotalInstances())
	}
	// Branch audits expect the branch total.
	for qi, expected := range w.Expected {
		if expected != 4000 {
			t.Errorf("audit %d expected = %d, want 4000", qi, expected)
		}
	}
	if len(w.Expected) != 2 {
		t.Errorf("expected map size = %d", len(w.Expected))
	}
	// Intra-branch transfers: both keys in the same branch.
	for ti := 0; ti < 3; ti++ {
		ws := w.Programs[ti].WriteSet()
		if ws[0][:2] != ws[1][:2] {
			t.Errorf("transfer %d crosses branches: %v", ti, ws)
		}
	}
}

func TestNewBankGlobalAudit(t *testing.T) {
	w, err := NewBank(BankConfig{
		Branches: 3, AccountsPerBranch: 2,
		InitialBalance: 100, TransferAmount: 10,
		TransferTypes: 2, TransferCount: 1, AuditCount: 1,
		Epsilon: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One global audit reading all 6 accounts.
	qi := len(w.Programs) - 1
	if got := len(w.Programs[qi].ReadSet()); got != 6 {
		t.Errorf("global audit reads %d accounts, want 6", got)
	}
	if w.Expected[qi] != 600 {
		t.Errorf("expected = %d, want 600", w.Expected[qi])
	}
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(BankConfig{Branches: 0}); err == nil {
		t.Error("zero branches accepted")
	}
	if _, err := NewBank(BankConfig{Branches: 1, AccountsPerBranch: 2}); err == nil {
		t.Error("no transfers accepted")
	}
}

func TestNewAirlineShape(t *testing.T) {
	w, err := NewAirline(AirlineConfig{
		Flights: 2, SeatsPerFlight: 10, ReserveCount: 3, QueryCount: 1, Epsilon: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Programs) != 3 { // 2 reserves + query
		t.Fatalf("programs = %d", len(w.Programs))
	}
	if !w.Programs[0].HasRollback() {
		t.Error("reserve lacks rollback statement")
	}
	if w.Expected[2] != 20 {
		t.Errorf("query expected = %d, want 20", w.Expected[2])
	}
	if _, err := NewAirline(AirlineConfig{}); err == nil {
		t.Error("empty airline accepted")
	}
}

func TestAirlineSellsOutExactly(t *testing.T) {
	// 3 seats, 6 reservation attempts: exactly 3 commit, 3 roll back,
	// and seats+booked stays invariant.
	w, err := NewAirline(AirlineConfig{
		Flights: 1, SeatsPerFlight: 3, ReserveCount: 6, QueryCount: 0, Epsilon: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunnerFor(w, core.BaselineSRCC, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, r, w, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 3 || res.RolledBack != 3 {
		t.Errorf("committed = %d rolledback = %d, want 3/3", res.Committed, res.RolledBack)
	}
}

func TestNewPayrollShape(t *testing.T) {
	w, err := NewPayroll(PayrollConfig{
		Employees: 3, InitialSalary: 50000, Raise: 1000,
		RaiseCount: 2, QueryCount: 1, Epsilon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Programs) != 4 {
		t.Fatalf("programs = %d", len(w.Programs))
	}
	if len(w.Expected) != 0 {
		t.Error("payroll queries must not claim an invariant answer")
	}
	if _, err := NewPayroll(PayrollConfig{}); err == nil {
		t.Error("empty payroll accepted")
	}
}

func TestDriverRunsFullStream(t *testing.T) {
	w, err := NewBank(BankConfig{
		Branches: 1, AccountsPerBranch: 4,
		InitialBalance: 10000, TransferAmount: 100,
		TransferTypes: 2, TransferCount: 10, AuditCount: 5,
		Epsilon: 0, IntraBranch: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunnerFor(w, core.BaselineSRCC, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, r, w, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != w.TotalInstances() {
		t.Errorf("committed = %d, want %d", res.Committed, w.TotalInstances())
	}
	if res.Latency.N() != res.Committed {
		t.Errorf("latency samples = %d", res.Latency.N())
	}
	// SR baseline: every audit exact.
	if res.MaxDeviation != 0 {
		t.Errorf("SR baseline deviation = %d", res.MaxDeviation)
	}
	if len(res.Deviations) != 5 {
		t.Errorf("deviations = %d, want 5 audit instances", len(res.Deviations))
	}
	if res.ThroughputTPS <= 0 {
		t.Error("zero throughput")
	}
}

func TestDriverDeviationBoundedUnderDC(t *testing.T) {
	const eps = 300
	w, err := NewBank(BankConfig{
		Branches: 1, AccountsPerBranch: 2,
		InitialBalance: 10000, TransferAmount: 100,
		TransferTypes: 1, TransferCount: 30, AuditCount: 10,
		Epsilon: eps, IntraBranch: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunnerFor(w, core.BaselineESRDC, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, r, w, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDeviation > eps {
		t.Errorf("max deviation %d > ε %d", res.MaxDeviation, eps)
	}
	if res.MaxImported > eps {
		t.Errorf("max imported %d > ε %d", res.MaxImported, eps)
	}
}

func TestWorkloadStoreIsFreshEachCall(t *testing.T) {
	w, err := NewBank(BankConfig{
		Branches: 1, AccountsPerBranch: 2,
		InitialBalance: 100, TransferAmount: 1,
		TransferTypes: 1, TransferCount: 1,
		Seed: 1, IntraBranch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := w.Store()
	s1.Set(storage.Key("b0:a0"), 0)
	s2 := w.Store()
	if got := s2.Get("b0:a0"); got != 100 {
		t.Errorf("second store polluted: %d", got)
	}
}

func TestHotBiasSkewsTransfers(t *testing.T) {
	w, err := NewBank(BankConfig{
		Branches: 1, AccountsPerBranch: 8,
		InitialBalance: 1000, TransferAmount: 10,
		TransferTypes: 40, TransferCount: 1,
		Epsilon: 0, IntraBranch: true, HotBias: 1.0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 40; ti++ {
		ws := w.Programs[ti].WriteSet()
		hot := false
		for _, k := range ws {
			if k == "b0:a0" {
				hot = true
			}
		}
		if !hot {
			t.Fatalf("transfer %d (%v) misses the hot account under full bias", ti, ws)
		}
	}
}
