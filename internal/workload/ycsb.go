package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// YCSBConfig parameterizes the YCSB-style networked workload: a
// read/update mix over records spread round-robin across sites, with
// Zipfian key skew. Unlike the closed-form bank/airline/payroll
// streams, this one is meant for the open-loop load rig: the declared
// program table is fixed (the chopping assumption), and the arrival
// process draws instances from it.
type YCSBConfig struct {
	// Records is the total number of records; record j lives at
	// Sites[j%len(Sites)] under key "<site>:r<j>".
	Records int
	// Sites owns the records round-robin.
	Sites []simnet.SiteID
	// Theta is the Zipfian skew in [0, 1); 0.99 is the YCSB default.
	Theta float64
	// ReadFraction is the fraction of program types that are span
	// reads; the rest are conserving transfer updates.
	ReadFraction float64
	// ProgramTypes is the size of the declared program table.
	ProgramTypes int
	// ReadSpan is the number of records per read program.
	ReadSpan int
	// TransferAmount bounds each transfer's delta (drawn 1..Amount).
	TransferAmount metric.Value
	// InitialBalance seeds every record.
	InitialBalance metric.Value
	// Epsilon is the ε-spec for both imports and exports.
	Epsilon metric.Fuzz
	// Seed fixes the table: two processes with the same config build
	// byte-identical program tables, which is what lets a multi-process
	// run agree on program indices.
	Seed int64
}

// ycsbKey names record j.
func ycsbKey(sites []simnet.SiteID, j int) storage.Key {
	return storage.Key(fmt.Sprintf("%s:r%d", sites[j%len(sites)], j))
}

// YCSBPlacement maps a record key back to its owning site (the prefix
// before ':'). It works for any key minted by ycsbKey regardless of
// which process minted it, so remote-site keys route correctly.
func YCSBPlacement(k storage.Key) simnet.SiteID {
	s := string(k)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return simnet.SiteID(s[:i])
	}
	return simnet.SiteID(s)
}

// SplitInitial splits a workload's initial state into per-site store
// seeds using the placement — the site.Config.Initial shape, so a
// multi-process run can hand each process only its own records.
func SplitInitial(initial map[storage.Key]metric.Value, placement func(storage.Key) simnet.SiteID) map[simnet.SiteID]map[storage.Key]metric.Value {
	out := make(map[simnet.SiteID]map[storage.Key]metric.Value)
	for k, v := range initial {
		site := placement(k)
		m := out[site]
		if m == nil {
			m = make(map[storage.Key]metric.Value)
			out[site] = m
		}
		m[k] = v
	}
	return out
}

// NewYCSB builds the workload. Update programs are conserving Zipf-
// drawn transfer pairs (AddOp −d on a hot record, +d on a uniform
// one), so the global total is invariant and any run can be audited
// for conservation. Read programs scan ReadSpan consecutive records
// starting at a Zipf-drawn rank. All writes are commutative deltas,
// keeping every program compensable under chopped execution.
func NewYCSB(cfg YCSBConfig) (*Workload, error) {
	if cfg.Records < 2 {
		return nil, fmt.Errorf("workload: ycsb needs >=2 records, got %d", cfg.Records)
	}
	if len(cfg.Sites) < 1 {
		return nil, fmt.Errorf("workload: ycsb needs >=1 site")
	}
	if cfg.ProgramTypes < 1 {
		return nil, fmt.Errorf("workload: ycsb needs >=1 program type")
	}
	if cfg.ReadSpan < 1 {
		cfg.ReadSpan = 1
	}
	if cfg.ReadSpan > cfg.Records {
		cfg.ReadSpan = cfg.Records
	}
	if cfg.TransferAmount < 1 {
		cfg.TransferAmount = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := NewZipfian(rng, cfg.Records, cfg.Theta)

	w := &Workload{
		Name:     "ycsb",
		Initial:  make(map[storage.Key]metric.Value, cfg.Records),
		Expected: make(map[int]metric.Value),
	}
	for j := 0; j < cfg.Records; j++ {
		w.Initial[ycsbKey(cfg.Sites, j)] = cfg.InitialBalance
	}

	updateSpec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.LimitOf(cfg.Epsilon)}
	readSpec := metric.Spec{Import: metric.LimitOf(cfg.Epsilon), Export: metric.Zero}
	reads := int(cfg.ReadFraction * float64(cfg.ProgramTypes))
	for ti := 0; ti < cfg.ProgramTypes; ti++ {
		if ti < reads {
			start := zipf.Next()
			ops := make([]txn.Op, 0, cfg.ReadSpan)
			for k := 0; k < cfg.ReadSpan; k++ {
				ops = append(ops, txn.ReadOp(ycsbKey(cfg.Sites, (start+k)%cfg.Records)))
			}
			p := txn.MustProgram(fmt.Sprintf("read%d", ti), ops...).WithSpec(readSpec)
			w.Programs = append(w.Programs, p)
			w.Counts = append(w.Counts, 1)
			continue
		}
		from := zipf.Next() // skew concentrates on the hot records
		to := rng.Intn(cfg.Records)
		for to == from {
			to = rng.Intn(cfg.Records)
		}
		d := 1 + metric.Value(rng.Int63n(int64(cfg.TransferAmount)))
		p := txn.MustProgram(fmt.Sprintf("xfer%d", ti),
			txn.AddOp(ycsbKey(cfg.Sites, from), -d),
			txn.AddOp(ycsbKey(cfg.Sites, to), d),
		).WithSpec(updateSpec)
		w.Programs = append(w.Programs, p)
		w.Counts = append(w.Counts, 1)
	}
	return w, nil
}

// Total sums the workload's initial value — the conserved quantity a
// post-run audit must find again (transfers net to zero; reads write
// nothing).
func (w *Workload) Total() metric.Value {
	var total metric.Value
	for _, v := range w.Initial {
		total += v
	}
	return total
}

// OriginSite reports the site owning program ti's first op — where its
// piece 0 commits. A multi-process run partitions the program table by
// origin so each process submits only programs it can initiate locally.
func (w *Workload) OriginSite(ti int, placement func(storage.Key) simnet.SiteID) simnet.SiteID {
	return placement(w.Programs[ti].Ops[0].Key)
}

// LocalPrograms returns the indices of programs whose origin site is
// local.
func (w *Workload) LocalPrograms(placement func(storage.Key) simnet.SiteID, local simnet.SiteID) []int {
	var out []int
	for ti := range w.Programs {
		if w.OriginSite(ti, placement) == local {
			out = append(out, ti)
		}
	}
	return out
}
