package workload

import (
	"math/rand"
	"strings"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
)

func TestZipfianDeterministicAndBounded(t *testing.T) {
	const n, draws = 1000, 20000
	a := NewZipfian(rand.New(rand.NewSource(42)), n, 0.99)
	b := NewZipfian(rand.New(rand.NewSource(42)), n, 0.99)
	for i := 0; i < draws; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, x, y)
		}
		if x < 0 || x >= n {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1000, 50000
	z := NewZipfian(rand.New(rand.NewSource(7)), n, 0.99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Under theta=0.99 the hottest ~1% of ranks should absorb a large
	// share of draws; uniform would give them 1%.
	hot := 0
	for k := 0; k < n/100; k++ {
		hot += counts[k]
	}
	if frac := float64(hot) / draws; frac < 0.3 {
		t.Fatalf("top 1%% of ranks drew only %.1f%% of accesses; want heavy skew", 100*frac)
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("rank 0 (%d draws) not hotter than rank %d (%d draws)", counts[0], n-1, counts[n-1])
	}
}

func TestZipfianDegenerate(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(1)), 1, 0.99)
	for i := 0; i < 100; i++ {
		if got := z.Next(); got != 0 {
			t.Fatalf("n=1 drew %d", got)
		}
	}
	// theta=0 must behave ~uniform: rank 0 near draws/n, not a hot spot.
	u := NewZipfian(rand.New(rand.NewSource(2)), 100, 0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[u.Next()]++
	}
	if counts[0] > 3*20000/100 {
		t.Fatalf("theta=0 rank 0 drew %d of 20000; want ~uniform", counts[0])
	}
}

func ycsbTestConfig() YCSBConfig {
	return YCSBConfig{
		Records:        40,
		Sites:          []simnet.SiteID{"NY", "LA", "CHI"},
		Theta:          0.9,
		ReadFraction:   0.25,
		ProgramTypes:   16,
		ReadSpan:       4,
		TransferAmount: 5,
		InitialBalance: 100,
		Epsilon:        1000,
		Seed:           99,
	}
}

func TestNewYCSBTableShape(t *testing.T) {
	cfg := ycsbTestConfig()
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Programs) != cfg.ProgramTypes {
		t.Fatalf("got %d programs, want %d", len(w.Programs), cfg.ProgramTypes)
	}
	if len(w.Initial) != cfg.Records {
		t.Fatalf("got %d records, want %d", len(w.Initial), cfg.Records)
	}
	if got, want := w.Total(), metric.Value(cfg.Records)*cfg.InitialBalance; got != want {
		t.Fatalf("total %d, want %d", got, want)
	}
	reads, xfers := 0, 0
	for _, p := range w.Programs {
		switch {
		case strings.HasPrefix(p.Name, "read"):
			reads++
			if len(p.Ops) != cfg.ReadSpan {
				t.Fatalf("%s has %d ops, want %d", p.Name, len(p.Ops), cfg.ReadSpan)
			}
		case strings.HasPrefix(p.Name, "xfer"):
			xfers++
			// A transfer must conserve: its two deltas sum to zero.
			if len(p.Ops) != 2 {
				t.Fatalf("%s has %d ops, want 2", p.Name, len(p.Ops))
			}
			d0 := p.Ops[0].Update(0)
			d1 := p.Ops[1].Update(0)
			if d0+d1 != 0 {
				t.Fatalf("%s deltas %d + %d != 0", p.Name, d0, d1)
			}
		default:
			t.Fatalf("unexpected program %q", p.Name)
		}
	}
	if want := int(cfg.ReadFraction * float64(cfg.ProgramTypes)); reads != want {
		t.Fatalf("got %d read programs, want %d", reads, want)
	}

	// Determinism: the same config yields an identical table in another
	// process — asserted here by rebuilding and comparing names + keys.
	w2, err := NewYCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range w.Programs {
		if w.Programs[ti].Name != w2.Programs[ti].Name {
			t.Fatalf("program %d differs across builds", ti)
		}
		for oi := range w.Programs[ti].Ops {
			if w.Programs[ti].Ops[oi].Key != w2.Programs[ti].Ops[oi].Key {
				t.Fatalf("program %d op %d key differs across builds", ti, oi)
			}
		}
	}
}

func TestYCSBPlacementAndSplit(t *testing.T) {
	cfg := ycsbTestConfig()
	w, err := NewYCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every key must place onto a declared site, round-robin by record.
	for k := range w.Initial {
		site := YCSBPlacement(k)
		found := false
		for _, s := range cfg.Sites {
			if s == site {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %q placed on undeclared site %q", k, site)
		}
	}
	split := SplitInitial(w.Initial, YCSBPlacement)
	if len(split) != len(cfg.Sites) {
		t.Fatalf("split into %d sites, want %d", len(split), len(cfg.Sites))
	}
	n := 0
	for site, m := range split {
		for k := range m {
			if YCSBPlacement(k) != site {
				t.Fatalf("key %q filed under %q", k, site)
			}
			n++
		}
	}
	if n != cfg.Records {
		t.Fatalf("split covers %d keys, want %d", n, cfg.Records)
	}

	// The origin partition must cover the table exactly once: each
	// program is local to exactly one site.
	covered := make(map[int]simnet.SiteID)
	for _, s := range cfg.Sites {
		for _, ti := range w.LocalPrograms(YCSBPlacement, s) {
			if prev, dup := covered[ti]; dup {
				t.Fatalf("program %d local to both %q and %q", ti, prev, s)
			}
			covered[ti] = s
		}
	}
	if len(covered) != len(w.Programs) {
		t.Fatalf("origin partition covers %d of %d programs", len(covered), len(w.Programs))
	}
	for ti, s := range covered {
		if got := YCSBPlacement(w.Programs[ti].Ops[0].Key); got != s {
			t.Fatalf("program %d origin %q, filed under %q", ti, got, s)
		}
	}
}

func TestScenarioTable(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range Scenarios() {
		names[sc.Name] = true
		if sc.RateFactor <= 0 {
			t.Errorf("scenario %q has RateFactor %v", sc.Name, sc.RateFactor)
		}
	}
	for _, want := range []string{"baseline", "degraded", "partition", "high-load"} {
		if !names[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
	sc, err := ScenarioByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	sched := sc.Script(1, []simnet.SiteID{"NY", "LA"})
	if sched.Len() != 2 {
		t.Fatalf("partition script has %d events, want cut+heal", sched.Len())
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}
