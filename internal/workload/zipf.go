package workload

import (
	"math"
	"math/rand"
)

// Zipfian draws ranks 0..n-1 with the YCSB-standard Zipfian skew:
// rank 0 is the hottest item, and the frequency of rank k falls off as
// 1/(k+1)^theta. Theta in (0, 1) — 0.99 is the classic YCSB default
// giving an ~hot-spot distribution; math/rand's built-in Zipf cannot
// express this range (it requires its exponent s > 1), hence the
// zeta-based implementation from the YCSB generator (Gray et al.'s
// "Quickly generating billion-record synthetic databases" recipe).
//
// Not safe for concurrent use; give each goroutine its own generator
// (they are cheap after construction — the zeta sum is precomputed).
type Zipfian struct {
	rng   *rand.Rand
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// zeta computes the incomplete zeta sum Σ_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// NewZipfian builds a generator over 0..n-1 with skew theta in [0, 1).
// Theta 0 degenerates to uniform. Construction is O(n) (the zeta sum);
// Next is O(1).
func NewZipfian(rng *rand.Rand, n int, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	if theta >= 1 {
		theta = 0.999 // the YCSB formulas need theta < 1
	}
	z := &Zipfian{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// Next draws the next rank.
func (z *Zipfian) Next() int {
	if z.n == 1 {
		return 0
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
